"""Tuner model persistence: train once, tune from disk."""

import numpy as np
import pytest

from repro import WorkDistributionTuner
from repro.core import ParameterSpace

SPACE = ParameterSpace(
    host_threads=(12, 48),
    host_affinities=("scatter",),
    device_threads=(60, 240),
    device_affinities=("balanced",),
    fractions=tuple(float(f) for f in range(0, 101, 10)),
)


@pytest.fixture(scope="module")
def trained(tmp_path_factory):
    tuner = WorkDistributionTuner(space=SPACE, seed=0)
    tuner.train(sizes_mb=(1000.0, 3170.0))
    directory = tmp_path_factory.mktemp("models")
    tuner.save_models(directory)
    return tuner, directory


class TestPersistence:
    def test_save_writes_three_files(self, trained):
        _, directory = trained
        assert (directory / "host_model.npz").exists()
        assert (directory / "device_model.npz").exists()
        assert (directory / "tuner_meta.json").exists()

    def test_loaded_tuner_predicts_identically(self, trained):
        tuner, directory = trained
        fresh = WorkDistributionTuner(space=SPACE, seed=0)
        fresh.load_models(directory)
        from repro.core.params import SystemConfiguration

        cfg = SystemConfiguration(48, "scatter", 240, "balanced", 60.0)
        a = tuner.models.evaluator().evaluate(cfg, 2000.0)
        b = fresh.models.evaluator().evaluate(cfg, 2000.0)
        assert a.t_host == pytest.approx(b.t_host)
        assert a.t_device == pytest.approx(b.t_device)

    def test_loaded_tuner_tunes_without_training(self, trained):
        _, directory = trained
        fresh = WorkDistributionTuner(space=SPACE, seed=0)
        fresh.load_models(directory)
        outcome = fresh.tune(3170.0, method="SAML", iterations=300)
        assert outcome.speedup_vs_host_only > 1.0

    def test_platform_mismatch_rejected(self, trained, tmp_path):
        _, directory = trained
        from repro.machines import EMIL
        from dataclasses import replace

        other = WorkDistributionTuner(
            platform=replace(EMIL, name="OtherBox"), space=SPACE
        )
        with pytest.raises(ValueError, match="platform"):
            other.load_models(directory)
