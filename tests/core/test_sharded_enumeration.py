"""Sharded + coarse-to-fine multi-device enumeration (core/enumeration.py)."""

import multiprocessing

import numpy as np
import pytest

from repro.core import (
    REFINE_RADIUS,
    enumerate_best_separable,
    enumerate_best_separable_ml,
    neighborhood_share_vectors,
    plan_share_shards,
    refine_share_steps,
)
from repro.core.params import ParameterSpace, platform_space, share_simplex
from repro.machines import PlatformSimulator, get_platform

SIZE_MB = 600.0


def two_device_space(**overrides) -> ParameterSpace:
    """A small 2-extra-part space matching dualphi's device count."""
    kwargs = dict(
        host_threads=(2, 48),
        device_threads=(60, 240),
        extra_device_grids=[((30, 120), ("balanced", "scatter"))],
        shares=share_simplex(3, 25.0),
    )
    kwargs.update(overrides)
    return ParameterSpace(**kwargs)


def dualphi_sim() -> PlatformSimulator:
    return PlatformSimulator(get_platform("dualphi"), seed=0)


class TestPlanShareShards:
    def test_single_shard_covers_everything(self):
        assert plan_share_shards(7, 1) == ((0, 7),)

    def test_near_equal_contiguous_partition(self):
        ranges = plan_share_shards(10, 3)
        assert ranges == ((0, 4), (4, 7), (7, 10))
        # Union is exactly range(n), in order, without gaps or overlaps.
        covered = [i for a, b in ranges for i in range(a, b)]
        assert covered == list(range(10))

    def test_sizes_differ_by_at_most_one(self):
        for n, s in [(495, 8), (231, 7), (41, 5), (100, 9)]:
            sizes = [b - a for a, b in plan_share_shards(n, s)]
            assert sum(sizes) == n
            assert max(sizes) - min(sizes) <= 1

    def test_more_shards_than_vectors_clamps(self):
        ranges = plan_share_shards(3, 10)
        assert ranges == ((0, 1), (1, 2), (2, 3))

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError, match="n_vectors"):
            plan_share_shards(0, 2)
        with pytest.raises(ValueError, match="shards"):
            plan_share_shards(5, 0)


class TestRefineShareSteps:
    def test_quadphi_schedule_snaps_to_paper_grid(self):
        assert refine_share_steps(12.5, 2.5) == (6.25, 3.125, 2.5)

    def test_three_part_schedule(self):
        assert refine_share_steps(5.0, 1.25) == (2.5, 1.25)

    def test_clean_halving_needs_no_snap(self):
        assert refine_share_steps(10.0, 2.5) == (5.0, 2.5)

    def test_already_fine_start_yields_empty_schedule(self):
        assert refine_share_steps(2.5, 2.5) == ()
        assert refine_share_steps(2.5, 5.0) == ()

    def test_steps_decrease_monotonically(self):
        steps = refine_share_steps(25.0, 1.25)
        assert all(a > b for a, b in zip(steps, steps[1:]))
        assert steps[-1] == 1.25

    def test_invalid_steps_rejected(self):
        with pytest.raises(ValueError, match="target step"):
            refine_share_steps(12.5, 0.0)
        with pytest.raises(ValueError, match="start step"):
            refine_share_steps(-1.0, 2.5)


class TestNeighborhoodShareVectors:
    def test_on_grid_center_is_included(self):
        center = (50.0, 25.0, 25.0)
        vectors = neighborhood_share_vectors(center, 2.5)
        assert center in vectors

    def test_vectors_sum_to_100_and_stay_bounded(self):
        vectors = neighborhood_share_vectors((50.0, 25.0, 25.0), 2.5)
        for v in vectors:
            assert sum(v) == pytest.approx(100.0, abs=1e-9)
            assert all(0.0 <= s <= 100.0 for s in v)

    def test_lexicographic_order(self):
        vectors = neighborhood_share_vectors((40.0, 30.0, 30.0), 5.0)
        assert list(vectors) == sorted(vectors)

    def test_components_stay_within_radius(self):
        center = (50.0, 25.0, 25.0)
        step = 2.5
        for v in neighborhood_share_vectors(center, step):
            for got, want in zip(v, center):
                assert abs(got - want) <= REFINE_RADIUS * step + 1e-9

    def test_off_grid_center_is_bracketed(self):
        # A snapped schedule can put the incumbent off the level's grid;
        # the neighborhood still surrounds it on both sides per axis.
        center = (51.0, 24.5, 24.5)
        vectors = neighborhood_share_vectors(center, 2.5)
        assert vectors
        cols = list(zip(*vectors))
        for k, share in enumerate(center):
            assert min(cols[k]) <= share <= max(cols[k])

    def test_edge_center_clips_to_the_simplex(self):
        vectors = neighborhood_share_vectors((100.0, 0.0, 0.0), 2.5)
        assert (100.0, 0.0, 0.0) in vectors
        for v in vectors:
            assert all(s >= 0.0 for s in v)

    def test_step_must_divide_100(self):
        with pytest.raises(ValueError, match="does not divide"):
            neighborhood_share_vectors((50.0, 25.0, 25.0), 3.0)
        with pytest.raises(ValueError, match="step must be"):
            neighborhood_share_vectors((50.0, 25.0, 25.0), 0.0)


class TestShardedMeasuredEnumeration:
    @pytest.fixture(scope="class")
    def baseline(self):
        return enumerate_best_separable(two_device_space(), dualphi_sim(), SIZE_MB)

    @pytest.mark.parametrize("shards", [2, 3, 5, 15, 50])
    def test_serial_shards_are_bit_identical(self, shards, baseline):
        res = enumerate_best_separable(
            two_device_space(), dualphi_sim(), SIZE_MB, shards=shards
        )
        assert res.best_config == baseline.best_config
        assert res.best_energy == baseline.best_energy
        assert res.configurations == baseline.configurations

    def test_pooled_shards_are_bit_identical(self, baseline):
        res = enumerate_best_separable(
            two_device_space(), dualphi_sim(), SIZE_MB, shards=3, processes=2
        )
        assert res.best_config == baseline.best_config
        assert res.best_energy == baseline.best_energy
        assert res.configurations == baseline.configurations

    @pytest.mark.parametrize("start_method", multiprocessing.get_all_start_methods())
    def test_start_method_independence(self, start_method, baseline):
        res = enumerate_best_separable(
            two_device_space(),
            dualphi_sim(),
            SIZE_MB,
            shards=3,
            processes=2,
            start_method=start_method,
        )
        assert res.best_config == baseline.best_config
        assert res.best_energy == baseline.best_energy

    def test_unknown_start_method_rejected(self):
        with pytest.raises(ValueError, match="not available"):
            enumerate_best_separable(
                two_device_space(),
                dualphi_sim(),
                SIZE_MB,
                shards=2,
                processes=2,
                start_method="no-such-method",
            )

    def test_refined_never_worse_than_coarse(self, baseline):
        refined = enumerate_best_separable(
            two_device_space(), dualphi_sim(), SIZE_MB, refine=5.0
        )
        assert refined.best_energy.value <= baseline.best_energy.value
        # Refinement levels consume extra enumerated configurations.
        assert refined.configurations > baseline.configurations

    def test_refinement_is_monotone_in_target_step(self):
        space = two_device_space()
        energies = [
            enumerate_best_separable(
                space, dualphi_sim(), SIZE_MB, refine=target
            ).best_energy.value
            for target in (12.5, 6.25, 5.0, 2.5)
        ]
        assert all(a >= b for a, b in zip(energies, energies[1:]))

    def test_sharded_refined_matches_serial_refined(self):
        space = two_device_space()
        serial = enumerate_best_separable(space, dualphi_sim(), SIZE_MB, refine=5.0)
        sharded = enumerate_best_separable(
            space, dualphi_sim(), SIZE_MB, refine=5.0, shards=4
        )
        assert sharded.best_config == serial.best_config
        assert sharded.best_energy == serial.best_energy
        assert sharded.configurations == serial.configurations

    def test_quadphi_refined_beats_coarse_strictly(self):
        # The acceptance scenario: quadphi's 12.5 % coarse grid refined
        # down to the paper-grid 2.5 % finds a strictly better optimum.
        spec = get_platform("quadphi")
        space = platform_space(spec)
        coarse = enumerate_best_separable(
            space, PlatformSimulator(spec, seed=0), SIZE_MB
        )
        refined = enumerate_best_separable(
            space, PlatformSimulator(spec, seed=0), SIZE_MB, refine=2.5
        )
        assert refined.best_energy.value < coarse.best_energy.value

    def test_single_device_knobs_are_noops(self):
        spec = get_platform("emil")
        space = platform_space(spec)
        plain = enumerate_best_separable(space, PlatformSimulator(spec, seed=0), SIZE_MB)
        knobbed = enumerate_best_separable(
            space,
            PlatformSimulator(spec, seed=0),
            SIZE_MB,
            shards=4,
            refine=2.5,
            processes=2,
        )
        assert knobbed == plain


class _LinearPredictor:
    """Picklable deterministic stand-in for the trained ensemble."""

    def predict_part(self, side, threads, affinities, mb):
        t = np.asarray(threads, dtype=np.float64)
        m = np.asarray(mb, dtype=np.float64)
        aff = np.asarray([0.9 if a == "balanced" else 1.0 for a in affinities])
        base = 2.0 if side == "host" else 1.0
        return base * m / (t * 40.0) * aff


class TestShardedMLEnumeration:
    @pytest.fixture(scope="class")
    def baseline(self):
        return enumerate_best_separable_ml(
            two_device_space(), _LinearPredictor(), SIZE_MB
        )

    @pytest.mark.parametrize("shards", [2, 4, 15])
    def test_serial_shards_are_bit_identical(self, shards, baseline):
        res = enumerate_best_separable_ml(
            two_device_space(), _LinearPredictor(), SIZE_MB, shards=shards
        )
        assert res.best_config == baseline.best_config
        assert res.best_energy == baseline.best_energy
        assert res.configurations == baseline.configurations

    def test_pooled_shards_are_bit_identical(self, baseline):
        res = enumerate_best_separable_ml(
            two_device_space(),
            _LinearPredictor(),
            SIZE_MB,
            shards=3,
            processes=2,
        )
        assert res.best_config == baseline.best_config
        assert res.best_energy == baseline.best_energy

    def test_refined_never_worse_than_coarse(self, baseline):
        refined = enumerate_best_separable_ml(
            two_device_space(), _LinearPredictor(), SIZE_MB, refine=5.0
        )
        assert refined.best_energy.value <= baseline.best_energy.value

    def test_single_device_space_rejected(self):
        spec = get_platform("emil")
        with pytest.raises(ValueError, match="single-device"):
            enumerate_best_separable_ml(
                platform_space(spec), _LinearPredictor(), SIZE_MB
            )
