"""The batched evaluation engine subsystem (core/engine.py).

Covers backend semantics (serial / cached / batched and their
composition), the budget tracker's exact-budget guarantee under uneven
batches, bit-identical results across engines for every searcher and
method, and the cache-transparency properties of :class:`CachedEngine`.
"""

import numpy as np
import pytest

from repro.core import (
    ENGINE_NAMES,
    BatchedEngine,
    CachedEngine,
    ParameterSpace,
    SerialEngine,
    make_engine,
    make_objective,
    run_method,
)
from repro.core.engine import EvaluationEngine
from repro.core.training import generate_training_data, train_models
from repro.machines import PlatformSimulator
from repro.search import (
    AntColony,
    BudgetTracker,
    GeneticAlgorithm,
    HillClimbing,
    RandomSearch,
    TabuSearch,
)
from repro.search.base import BudgetExhausted

SPACE = ParameterSpace(
    host_threads=(2, 6, 12, 24, 36, 48),
    device_threads=(2, 4, 8, 16, 30, 60, 120, 180, 240),
)

SMALL_SPACE = ParameterSpace(
    host_threads=(12, 48),
    host_affinities=("scatter",),
    device_threads=(60, 240),
    device_affinities=("balanced",),
    fractions=tuple(float(f) for f in range(0, 101, 10)),
)

ALL_SEARCHERS = [RandomSearch, HillClimbing, TabuSearch, GeneticAlgorithm, AntColony]


def analytic_objective(config) -> float:
    return (
        0.5
        + abs(config.host_fraction - 60.0) / 100.0
        + (48 - config.host_threads) / 100.0
        + (240 - config.device_threads) / 1000.0
    )


def engine_variants() -> list[EvaluationEngine]:
    """One fresh instance of every backend (plus the composition)."""
    return [
        SerialEngine(),
        CachedEngine(),
        BatchedEngine(16),
        CachedEngine(BatchedEngine(8)),
    ]


class CountingObjective:
    """Deterministic objective that counts how often it is called."""

    def __init__(self, fn=analytic_objective):
        self.fn = fn
        self.calls = 0

    def __call__(self, config):
        self.calls += 1
        return self.fn(config)


class BatchRecordingObjective(CountingObjective):
    """Adds a batch protocol and records submitted chunk sizes."""

    def __init__(self, fn=analytic_objective):
        super().__init__(fn)
        self.chunk_sizes = []

    def evaluate_batch(self, configs):
        self.chunk_sizes.append(len(configs))
        return [self(c) for c in configs]


def random_configs(n, seed=0, space=SPACE):
    rng = np.random.default_rng(seed)
    return [space.random_config(rng) for _ in range(n)]


class ScalarSimObjective:
    """Picklable simulator-backed objective WITHOUT the batch protocol,
    so :class:`BatchedEngine` must take its process-pool path."""

    def __init__(self, sim, size_mb):
        self.sim = sim
        self.size_mb = size_mb

    def __call__(self, config):
        from repro.core import MeasurementEvaluator, make_objective

        return make_objective(MeasurementEvaluator(self.sim), self.size_mb)(config)


@pytest.fixture(scope="module")
def sim():
    return PlatformSimulator(seed=0)


@pytest.fixture(scope="module")
def ml(sim):
    data = generate_training_data(
        sim,
        sizes_mb=(1000.0, 3170.0),
        fractions=tuple(np.arange(10.0, 101.0, 10.0)),
    )
    return train_models(data).evaluator()


class TestSerialEngine:
    def test_matches_direct_calls(self):
        configs = random_configs(20)
        values = SerialEngine().evaluate_batch(analytic_objective, configs)
        assert values == [analytic_objective(c) for c in configs]

    def test_stats_account_batches_and_evaluations(self):
        engine = SerialEngine()
        engine.evaluate_batch(analytic_objective, random_configs(7))
        engine.evaluate(analytic_objective, random_configs(1)[0])
        assert engine.stats.batches == 2
        assert engine.stats.evaluations == 8
        assert engine.cache_hits == 0


class TestCachedEngine:
    def test_values_never_change(self):
        """Property: caching is invisible — randomized over many configs."""
        rng = np.random.default_rng(42)
        engine = CachedEngine()
        objective = CountingObjective()
        for trial in range(30):
            # Batches with deliberate repeats (sampling with replacement).
            pool = random_configs(12, seed=trial)
            batch = [pool[i] for i in rng.integers(0, len(pool), size=10)]
            values = engine.evaluate_batch(objective, batch)
            assert values == [analytic_objective(c) for c in batch]

    def test_repeat_configs_do_not_recompute(self):
        engine = CachedEngine()
        objective = CountingObjective()
        configs = random_configs(5)
        engine.evaluate_batch(objective, configs)
        assert objective.calls == 5
        engine.evaluate_batch(objective, configs)
        assert objective.calls == 5  # all hits
        assert engine.cache_hits == 5

    def test_intra_batch_duplicates_computed_once(self):
        engine = CachedEngine()
        objective = CountingObjective()
        config = random_configs(1)[0]
        values = engine.evaluate_batch(objective, [config, config, config])
        assert objective.calls == 1
        assert values[0] == values[1] == values[2]

    def test_cache_hits_monotone_nondecreasing(self):
        """Property: hit counts only grow, randomized batch sequence."""
        rng = np.random.default_rng(7)
        engine = CachedEngine()
        objective = CountingObjective()
        pool = random_configs(15, seed=3)
        previous = 0
        for _ in range(50):
            batch = [pool[i] for i in rng.integers(0, len(pool), size=rng.integers(1, 8))]
            engine.evaluate_batch(objective, batch)
            assert engine.cache_hits >= previous
            previous = engine.cache_hits
        assert previous > 0  # small pool guarantees revisits

    def test_caches_are_per_objective(self):
        engine = CachedEngine()
        plus_one = CountingObjective(lambda c: analytic_objective(c) + 1.0)
        base = CountingObjective()
        config = random_configs(1)[0]
        a = engine.evaluate(base, config)
        b = engine.evaluate(plus_one, config)
        assert b == a + 1.0
        assert base.calls == 1 and plus_one.calls == 1

    def test_composes_with_batched_inner(self):
        inner = BatchedEngine(4)
        engine = CachedEngine(inner)
        objective = BatchRecordingObjective()
        configs = random_configs(10)
        values = engine.evaluate_batch(objective, configs + configs)
        assert values[:10] == values[10:]
        assert objective.calls == 10  # second half served from cache
        assert all(size <= 4 for size in objective.chunk_sizes)


class TestBatchedEngine:
    def test_respects_batch_size_chunking(self):
        objective = BatchRecordingObjective()
        engine = BatchedEngine(8)
        engine.evaluate_batch(objective, random_configs(21))
        assert objective.chunk_sizes == [8, 8, 5]

    def test_scalar_fallback_without_batch_protocol(self):
        objective = CountingObjective()  # no evaluate_batch attribute
        values = BatchedEngine(4).evaluate_batch(objective, random_configs(9))
        assert objective.calls == 9
        assert values == [analytic_objective(c) for c in random_configs(9)]

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            BatchedEngine(0)
        with pytest.raises(ValueError):
            BatchedEngine(4, processes=0)

    def test_ml_batch_is_bit_identical_to_serial(self, ml):
        configs = random_configs(64, seed=9)
        serial = SerialEngine().evaluate_batch(make_objective(ml, 2435.0), configs)
        batched = BatchedEngine(16).evaluate_batch(make_objective(ml, 2435.0), configs)
        assert serial == batched  # exact float equality, not approx

    def test_process_pool_matches_serial(self, sim):
        """Pool path on a picklable simulator-backed objective."""
        from repro.core import MeasurementEvaluator

        configs = random_configs(6, seed=2, space=SMALL_SPACE)
        expected = [
            MeasurementEvaluator(sim).evaluate(c, 1000.0).value for c in configs
        ]

        engine = BatchedEngine(3, processes=2)
        try:
            values = engine.evaluate_batch(ScalarSimObjective(sim, 1000.0), configs)
        finally:
            engine.close()
        assert values == pytest.approx(expected)


class TestMakeEngine:
    def test_all_names_construct(self):
        for name in ENGINE_NAMES:
            assert isinstance(make_engine(name), EvaluationEngine)

    def test_names_map_to_expected_backends(self):
        assert isinstance(make_engine("serial"), SerialEngine)
        assert isinstance(make_engine("cached"), CachedEngine)
        assert isinstance(make_engine("batched"), BatchedEngine)
        composed = make_engine("cached+batched", batch_size=32)
        assert isinstance(composed, CachedEngine)
        assert isinstance(composed.inner, BatchedEngine)
        assert composed.inner.batch_size == 32

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown engine"):
            make_engine("warp-drive")

    def test_case_insensitive(self):
        assert isinstance(make_engine("  Serial "), SerialEngine)


class TestBudgetTracker:
    def test_truncates_final_batch_to_budget(self):
        track = BudgetTracker(analytic_objective, 10, SerialEngine())
        sizes = []
        with pytest.raises(BudgetExhausted):
            while True:
                sizes.append(len(track.evaluate_many(random_configs(4))))
        assert sizes == [4, 4, 2]  # final batch truncated, never over budget
        assert track.result.evaluations == 10
        assert len(track.result.trace) == 10

    def test_raises_once_budget_is_spent(self):
        track = BudgetTracker(analytic_objective, 3, SerialEngine())
        track.evaluate_many(random_configs(3))
        with pytest.raises(BudgetExhausted):
            track.evaluate(random_configs(1)[0])

    def test_never_exceeds_budget_for_any_batch_shape(self):
        """The uneven-batch assertion: populations never overshoot."""
        for budget in (1, 5, 7, 23):
            for batch in (1, 2, 3, 10):
                track = BudgetTracker(analytic_objective, budget, SerialEngine())
                try:
                    while True:
                        track.evaluate_many(random_configs(batch))
                except BudgetExhausted:
                    pass
                assert track.result.evaluations == budget

    def test_searcher_batches_respect_uneven_budget(self):
        """GA population (24) does not divide 97; budget must hold exactly."""
        for engine in engine_variants():
            result = GeneticAlgorithm(SPACE, seed=0, engine=engine).run(
                analytic_objective, budget=97
            )
            assert result.evaluations == 97
            assert len(result.trace) == 97


class TestEngineDeterminism:
    """Acceptance: identical best configs/traces across all backends."""

    @pytest.mark.parametrize("cls", ALL_SEARCHERS)
    def test_searcher_identical_across_engines(self, cls):
        reference = cls(SPACE, seed=5).run(analytic_objective, budget=120)
        for engine in engine_variants():
            result = cls(SPACE, seed=5, engine=engine).run(
                analytic_objective, budget=120
            )
            assert result.trace == reference.trace, engine.name
            assert result.best_config == reference.best_config, engine.name
            assert result.best_value == reference.best_value, engine.name

    @pytest.mark.parametrize("cls", ALL_SEARCHERS)
    def test_searcher_identical_on_ml_objective(self, cls, ml):
        reference = cls(SMALL_SPACE, seed=1).run(
            make_objective(ml, 3170.0), budget=60
        )
        for engine in engine_variants():
            result = cls(SMALL_SPACE, seed=1, engine=engine).run(
                make_objective(ml, 3170.0), budget=60
            )
            assert result.trace == reference.trace, engine.name
            assert result.best_config == reference.best_config, engine.name

    @pytest.mark.parametrize("method", ["SAM", "SAML", "EML"])
    def test_run_method_identical_across_engines(self, method, sim, ml):
        reference = run_method(
            method, SMALL_SPACE, sim, 3170.0, ml=ml, iterations=80, seed=0
        )
        for engine in engine_variants():
            result = run_method(
                method,
                SMALL_SPACE,
                sim,
                3170.0,
                ml=ml,
                iterations=80,
                seed=0,
                engine=engine,
            )
            assert result.config == reference.config, engine.name
            assert result.measured_time == reference.measured_time, engine.name
            assert result.search_energy.value == reference.search_energy.value

    def test_cached_engine_saves_annealing_work(self, ml):
        from repro.core import SimulatedAnnealing
        from repro.core.evaluators import EnergyObjective

        engine = CachedEngine()
        sa = SimulatedAnnealing(SMALL_SPACE, seed=0, engine=engine)
        sa.run(EnergyObjective(ml, 3170.0), iterations=300)
        # The small space has 44 configurations; 301 evaluations must hit.
        assert engine.cache_hits > 0
        assert engine.stats.evaluations == 301


class TestCacheLifetime:
    def test_dead_objectives_do_not_pin_their_caches(self):
        """A long-lived engine shared across runs must not leak caches."""
        import gc

        engine = CachedEngine()
        for trial in range(5):
            objective = CountingObjective()
            engine.evaluate_batch(objective, random_configs(10, seed=trial))
            del objective
        gc.collect()
        assert len(engine._caches) == 0

    def test_equal_configs_share_a_cache_entry(self):
        """Keys are the frozen configs themselves: field-complete equality."""
        engine = CachedEngine()
        objective = CountingObjective()
        config = random_configs(1)[0]
        clone = type(config)(
            config.host_threads,
            config.host_affinity,
            config.device_threads,
            config.device_affinity,
            config.host_fraction,
        )
        engine.evaluate(objective, config)
        engine.evaluate(objective, clone)
        assert objective.calls == 1
        assert engine.cache_hits == 1
