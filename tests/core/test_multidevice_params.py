"""Multi-device configurations, spaces, and tables (core/params.py)."""

import numpy as np
import pytest

from repro.core import DeviceSlot, SystemConfiguration
from repro.core.params import (
    FRACTIONS,
    ConfigTable,
    ParameterSpace,
    platform_space,
    share_simplex,
    share_step_for,
)
from repro.machines import get_platform


def small_space(**overrides) -> ParameterSpace:
    """A tiny 2-device space for exhaustive checks."""
    kwargs = dict(
        host_threads=(2, 48),
        device_threads=(60, 240),
        extra_device_grids=[((30, 120), ("balanced", "scatter"))],
        shares=share_simplex(3, 25.0),
    )
    kwargs.update(overrides)
    return ParameterSpace(**kwargs)


def two_device_config(host=40.0, extra=35.0) -> SystemConfiguration:
    return SystemConfiguration(
        48, "scatter", 240, "balanced", host,
        (DeviceSlot(120, "balanced", extra),),
    )


class TestShareSimplex:
    def test_two_parts_reproduce_the_fraction_grid(self):
        vectors = share_simplex(2)
        assert tuple(v[0] for v in vectors) == FRACTIONS
        assert all(v[0] + v[1] == 100.0 for v in vectors)

    @pytest.mark.parametrize("parts", [2, 3, 4, 5, 6, 9])
    def test_vectors_sum_to_100_and_stay_bounded(self, parts):
        vectors = share_simplex(parts)
        # Stars and bars: C(units + parts - 1, parts - 1) vectors.
        assert 10 < len(vectors) < 15000
        for v in vectors:
            assert len(v) == parts
            assert sum(v) == pytest.approx(100.0, abs=1e-9)
            assert all(0.0 <= s <= 100.0 for s in v)

    def test_lexicographic_order(self):
        vectors = share_simplex(3, 25.0)
        assert vectors.index((0.0, 0.0, 100.0)) == 0
        assert list(vectors) == sorted(vectors)

    def test_step_must_divide_100(self):
        with pytest.raises(ValueError, match="divide 100"):
            share_simplex(3, 30.0)

    def test_step_grows_with_parts(self):
        steps = [share_step_for(p) for p in range(2, 10)]
        assert steps == sorted(steps)
        assert steps[0] == 2.5

    @pytest.mark.parametrize(
        "parts,step,expected",
        [
            (4, 10.0, 286),  # C(10 + 3, 3)
            (4, 5.0, 1771),  # C(20 + 3, 3)
            (5, 20.0, 126),  # C(5 + 4, 4)
            (5, 10.0, 1001),  # C(10 + 4, 4)
        ],
    )
    def test_fine_step_overrides_follow_stars_and_bars(self, parts, step, expected):
        vectors = share_simplex(parts, step)
        assert len(vectors) == expected
        assert list(vectors) == sorted(vectors)
        for v in vectors:
            assert len(v) == parts
            assert sum(v) == 100.0  # exact, not approximate
            assert all(s % step == 0.0 for s in v)

    @pytest.mark.parametrize("parts,step", [(4, 5.0), (5, 12.5)])
    def test_shard_union_reassembles_the_full_simplex(self, parts, step):
        from repro.core import plan_share_shards

        vectors = share_simplex(parts, step)
        for shards in (1, 3, 7, 16):
            ranges = plan_share_shards(len(vectors), shards)
            union = [v for a, b in ranges for v in vectors[a:b]]
            assert union == list(vectors)


class TestMultiDeviceConfiguration:
    def test_share_vector_and_residual_primary(self):
        c = two_device_config(40.0, 35.0)
        assert c.num_devices == 2
        assert c.shares == (40.0, 25.0, 35.0)
        assert c.primary_device_share == 25.0
        assert [s.share for s in c.device_slots] == [25.0, 35.0]

    def test_overcommitted_shares_rejected(self):
        with pytest.raises(ValueError, match="sum to 100"):
            two_device_config(80.0, 35.0)

    def test_part_megabytes_conserves_work(self):
        c = two_device_config(40.0, 35.0)
        host_mb, dev_mbs = c.part_megabytes(1000.0)
        assert host_mb == 400.0
        assert dev_mbs == (250.0, 350.0)
        assert host_mb + sum(dev_mbs) == 1000.0

    def test_single_device_part_megabytes_unchanged(self):
        c = SystemConfiguration(48, "scatter", 240, "balanced", 62.5)
        host_mb, dev_mbs = c.part_megabytes(3170.0)
        assert host_mb == 3170.0 * 62.5 / 100.0
        assert dev_mbs == (3170.0 - host_mb,)

    def test_with_shares(self):
        c = two_device_config(40.0, 35.0).with_shares((10.0, 50.0, 40.0))
        assert c.shares == (10.0, 50.0, 40.0)
        with pytest.raises(ValueError, match="sum to 100"):
            two_device_config().with_shares((10.0, 50.0, 50.0))

    def test_describe_lists_every_part(self):
        text = two_device_config(40.0, 35.0).describe()
        assert text == "48xscatter | 240xbalanced | 120xbalanced | 40/25/35"

    def test_n1_describe_unchanged(self):
        c = SystemConfiguration(24, "scatter", 120, "balanced", 60.0)
        assert c.describe() == "24xscatter | 120xbalanced | 60/40"

    def test_list_extra_devices_coerced_even_when_empty(self):
        # An empty list must not leak through: the config stays
        # hashable and equal to its tuple-built twin.
        c = SystemConfiguration(48, "scatter", 240, "balanced", 60.0, [])
        assert c.extra_devices == ()
        assert hash(c) == hash(SystemConfiguration(48, "scatter", 240, "balanced", 60.0))
        d = SystemConfiguration(
            48, "scatter", 240, "balanced", 60.0, [DeviceSlot(120, "balanced", 20.0)]
        )
        assert isinstance(d.extra_devices, tuple)
        assert hash(d) is not None


class TestMultiDeviceSpace:
    def test_size_matches_iteration(self):
        space = small_space()
        configs = list(space)
        assert space.size() == len(configs) == 2 * 3 * 2 * 3 * 2 * 2 * 15

    def test_every_config_is_contained(self):
        space = small_space()
        for config in space:
            assert config in space

    def test_share_vectors_must_sum_to_100(self):
        with pytest.raises(ValueError, match="sum to 100"):
            small_space(shares=[(50.0, 30.0, 30.0)])

    def test_share_vectors_checked_at_construction(self):
        with pytest.raises(ValueError, match="parts"):
            small_space(shares=[(50.0, 50.0)])
        with pytest.raises(ValueError, match="outside"):
            small_space(shares=[(150.0, -50.0, 0.0)])

    def test_shares_require_extra_grids(self):
        with pytest.raises(ValueError, match="extra_device_grids"):
            ParameterSpace(shares=[(50.0, 50.0)])

    def test_random_and_neighbor_stay_in_space(self):
        space = small_space()
        rng = np.random.default_rng(7)
        c = space.random_config(rng)
        assert c in space
        for _ in range(300):
            c = space.neighbor(c, rng)
            assert c in space

    def test_neighbor_changes_at_most_one_axis(self):
        space = small_space()
        rng = np.random.default_rng(3)
        c = space.random_config(rng)
        for _ in range(200):
            n = space.neighbor(c, rng)
            diffs = sum(
                (
                    n.host_threads != c.host_threads,
                    n.host_affinity != c.host_affinity,
                    n.device_threads != c.device_threads,
                    n.device_affinity != c.device_affinity,
                    tuple(
                        (s.threads, s.affinity) for s in n.extra_devices
                    ) != tuple((s.threads, s.affinity) for s in c.extra_devices),
                    n.shares != c.shares,
                )
            )
            assert diffs <= 1
            c = n

    def test_platform_space_fits_each_card(self):
        space = platform_space(get_platform("mixedphi"))
        assert space.num_devices == 2
        primary, secondary = space.device_grids
        assert max(primary[0]) == 240  # 7120P
        assert max(secondary[0]) == 236  # 5110P: 59 usable cores x 4
        assert space.share_vectors is not None

    def test_quadphi_space_has_five_part_simplex(self):
        space = platform_space(get_platform("quadphi"))
        assert space.num_devices == 4
        assert all(len(v) == 5 for v in space.share_vectors)

    def test_single_device_platforms_unchanged(self):
        from repro.core.params import DEFAULT_SPACE

        assert platform_space(get_platform("emil")) is DEFAULT_SPACE


class TestMultiDeviceConfigTable:
    def test_round_trip(self):
        space = small_space()
        configs = list(space)[::7]
        table = ConfigTable.from_configs(configs)
        assert table.num_devices == 2
        assert table.configs() == configs

    def test_from_space_matches_iteration_order(self):
        space = small_space()
        table = ConfigTable.from_space(space)
        assert len(table) == space.size()
        assert table.configs() == list(space)

    def test_part_mb_matches_scalar_rule(self):
        space = small_space()
        configs = list(space)[::11]
        table = ConfigTable.from_configs(configs)
        host_mb, dev_mbs = table.part_mb(600.0)
        for i, config in enumerate(configs):
            want_host, want_devs = config.part_megabytes(600.0)
            assert host_mb[i] == want_host
            assert tuple(mb[i] for mb in dev_mbs) == want_devs

    def test_mixed_device_counts_rejected(self):
        with pytest.raises(ValueError, match="uniform"):
            ConfigTable.from_configs(
                [two_device_config(), SystemConfiguration(48, "scatter", 240, "balanced", 50.0)]
            )


class TestPartMbResidualClamp:
    def test_adversarial_fractions_clamp_to_zero(self):
        from repro.core.params import part_mb_columns

        # host 0 + three thirds: float64 accumulation leaves the primary
        # residual at ~-1.4e-14, which must clamp to an exactly-zero
        # megabyte column instead of going negative.
        third = 100.0 / 3.0
        host_mb, dev_mbs = part_mb_columns(
            np.array([0.0]), [np.array([third])] * 3, 3170.0
        )
        assert host_mb[0] == 0.0
        assert dev_mbs[0][0] == 0.0  # primary residual, clamped
        for mb in dev_mbs:
            assert (mb >= 0.0).all()
        # Work is still conserved to float precision.
        total = host_mb[0] + sum(mb[0] for mb in dev_mbs)
        assert total == pytest.approx(3170.0, rel=1e-12)

    def test_scalar_rule_clamps_identically(self):
        third = 100.0 / 3.0
        c = SystemConfiguration(
            48, "scatter", 240, "balanced", 0.0,
            (DeviceSlot(120, "balanced", third), DeviceSlot(120, "scatter", third)),
        )
        # primary share = 100 - 0 - 2*third ~= third - 7e-15: fine.
        host_mb, dev_mbs = c.part_megabytes(3170.0)
        assert host_mb == 0.0
        assert all(mb >= 0.0 for mb in dev_mbs)

    def test_residual_beyond_tolerance_still_raises(self):
        from repro.core.params import part_mb_columns

        with pytest.raises(ValueError, match="sum to 100"):
            part_mb_columns(
                np.array([50.0]), [np.array([30.0]), np.array([30.0])], 600.0
            )

    def test_mixed_rows_clamp_only_the_dirty_one(self):
        from repro.core.params import part_mb_columns

        third = 100.0 / 3.0
        host = np.array([0.0, 40.0])
        extras = [np.array([third, 25.0]), np.array([third, 10.0]), np.array([third, 5.0])]
        host_mb, dev_mbs = part_mb_columns(host, extras, 1000.0)
        assert dev_mbs[0][0] == 0.0
        assert dev_mbs[0][1] == pytest.approx(200.0)  # 100-40-40 = 20 %
        assert host_mb[1] == pytest.approx(400.0)
