"""Objective (Eq. 2) and the measurement/ML evaluators."""

import pytest

from repro.core import Energy, MeasurementEvaluator, MLEvaluator, make_objective
from repro.core.params import SystemConfiguration
from repro.machines import PlatformSimulator


def config(fraction=60.0, **kw):
    base = dict(
        host_threads=48,
        host_affinity="scatter",
        device_threads=240,
        device_affinity="balanced",
        host_fraction=fraction,
    )
    base.update(kw)
    return SystemConfiguration(**base)


class TestEnergy:
    def test_value_is_max(self):
        assert Energy(1.0, 2.0).value == 2.0
        assert Energy(3.0, 2.0).value == 3.0

    def test_ordering(self):
        assert Energy(1.0, 1.0) < Energy(2.0, 0.1)


class TestMeasurementEvaluator:
    def test_counts_distinct_configurations(self):
        ev = MeasurementEvaluator(PlatformSimulator(seed=0))
        ev.evaluate(config(60.0), 1000.0)
        ev.evaluate(config(60.0), 1000.0)  # cached
        ev.evaluate(config(50.0), 1000.0)
        assert ev.evaluations == 2

    def test_cache_returns_identical_energy(self):
        ev = MeasurementEvaluator(PlatformSimulator(seed=0))
        a = ev.evaluate(config(), 1000.0)
        b = ev.evaluate(config(), 1000.0)
        assert a == b

    def test_zero_fraction_side_costs_nothing(self):
        ev = MeasurementEvaluator(PlatformSimulator(seed=0))
        host_only = ev.evaluate(config(100.0), 1000.0)
        assert host_only.t_device == 0.0
        device_only = ev.evaluate(config(0.0), 1000.0)
        assert device_only.t_host == 0.0

    def test_energy_matches_simulator_times(self):
        sim = PlatformSimulator(seed=0)
        ev = MeasurementEvaluator(sim)
        e = ev.evaluate(config(60.0), 1000.0)
        assert e.t_host == pytest.approx(sim.measure_host(48, "scatter", 600.0))
        assert e.t_device == pytest.approx(sim.measure_device(240, "balanced", 400.0))


class _ConstModel:
    def __init__(self, value):
        self.value = value

    def fit(self, X, y):
        return self

    def predict(self, X):
        import numpy as np

        return np.full(len(X), self.value)


class TestMLEvaluator:
    def test_energy_is_max_of_predictions(self):
        ev = MLEvaluator(_ConstModel(1.0), _ConstModel(2.0))
        assert ev.evaluate(config(60.0), 1000.0).value == 2.0

    def test_zero_share_sides_skip_prediction(self):
        ev = MLEvaluator(_ConstModel(1.0), _ConstModel(2.0))
        assert ev.evaluate(config(100.0), 1000.0).value == 1.0
        assert ev.evaluate(config(0.0), 1000.0).value == 2.0

    def test_negative_predictions_clipped(self):
        ev = MLEvaluator(_ConstModel(-5.0), _ConstModel(-5.0))
        e = ev.evaluate(config(50.0), 1000.0)
        assert e.t_host > 0.0 and e.t_device > 0.0

    def test_evaluation_counter(self):
        ev = MLEvaluator(_ConstModel(1.0), _ConstModel(1.0))
        ev.evaluate(config(50.0), 1000.0)
        ev.evaluate(config(50.0), 1000.0)
        assert ev.evaluations == 2  # counts calls, caching is internal


class TestMakeObjective:
    def test_adapts_to_plain_callable(self):
        ev = MLEvaluator(_ConstModel(1.0), _ConstModel(3.0))
        obj = make_objective(ev, 1000.0)
        assert obj(config(50.0)) == 3.0
