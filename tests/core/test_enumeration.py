"""Exhaustive enumeration, including the separable fast path."""

import pytest

from repro.core import (
    MeasurementEvaluator,
    ParameterSpace,
    enumerate_best,
    enumerate_best_separable,
)
from repro.machines import PlatformSimulator

SMALL = ParameterSpace(
    host_threads=(12, 48),
    host_affinities=("scatter", "compact"),
    device_threads=(60, 240),
    device_affinities=("balanced",),
    fractions=(0.0, 25.0, 50.0, 75.0, 100.0),
)


class TestEnumerateBest:
    def test_finds_global_minimum(self):
        sim = PlatformSimulator(seed=0)
        ev = MeasurementEvaluator(sim)
        res = enumerate_best(SMALL, ev, 2000.0)
        # Verify against an explicit scan.
        ev2 = MeasurementEvaluator(PlatformSimulator(seed=0))
        energies = [ev2.evaluate(c, 2000.0).value for c in SMALL.iter_configs()]
        assert res.best_energy.value == pytest.approx(min(energies))

    def test_configuration_count(self):
        ev = MeasurementEvaluator(PlatformSimulator(seed=0))
        res = enumerate_best(SMALL, ev, 2000.0)
        assert res.configurations == SMALL.size() == 40

    def test_keep_all_returns_every_row(self):
        ev = MeasurementEvaluator(PlatformSimulator(seed=0))
        res, rows = enumerate_best(SMALL, ev, 2000.0, keep_all=True)
        assert len(rows) == SMALL.size()
        assert min(e.value for _, e in rows) == res.best_energy.value


class TestSeparableFastPath:
    def test_identical_to_full_walk(self):
        slow = enumerate_best(
            SMALL, MeasurementEvaluator(PlatformSimulator(seed=3)), 2500.0
        )
        fast = enumerate_best_separable(SMALL, PlatformSimulator(seed=3), 2500.0)
        assert fast.best_config == slow.best_config
        assert fast.best_energy.value == pytest.approx(slow.best_energy.value)

    def test_counts_full_space(self):
        fast = enumerate_best_separable(SMALL, PlatformSimulator(seed=3), 2500.0)
        assert fast.configurations == SMALL.size()

    def test_large_input_prefers_split(self):
        res = enumerate_best_separable(SMALL, PlatformSimulator(seed=0), 3170.0)
        assert 0.0 < res.best_config.host_fraction < 100.0

    def test_small_input_prefers_host_only(self):
        res = enumerate_best_separable(SMALL, PlatformSimulator(seed=0), 100.0)
        assert res.best_config.host_fraction == 100.0
