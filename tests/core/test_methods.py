"""The EM / EML / SAM / SAML methods (Table II)."""

import numpy as np
import pytest

from repro.core import (
    METHOD_PROPERTIES,
    ParameterSpace,
    run_em,
    run_eml,
    run_method,
    run_sam,
    run_saml,
)
from repro.core.training import generate_training_data, train_models
from repro.machines import PlatformSimulator

SPACE = ParameterSpace(
    host_threads=(12, 48),
    host_affinities=("scatter",),
    device_threads=(60, 240),
    device_affinities=("balanced",),
    fractions=tuple(float(f) for f in range(0, 101, 10)),
)


@pytest.fixture(scope="module")
def sim():
    return PlatformSimulator(seed=0)


@pytest.fixture(scope="module")
def ml(sim):
    data = generate_training_data(
        sim,
        sizes_mb=(1000.0, 3170.0),
        fractions=tuple(np.arange(10.0, 101.0, 10.0)),
    )
    return train_models(data).evaluator()


class TestTable2:
    def test_all_four_methods_listed(self):
        assert set(METHOD_PROPERTIES) == {"EM", "EML", "SAM", "SAML"}

    def test_em_is_the_only_optimal_method(self):
        optimal = [m for m, p in METHOD_PROPERTIES.items() if p["accuracy"] == "optimal"]
        assert optimal == ["EM"]

    def test_ml_methods_predict(self):
        for m in ("EML", "SAML"):
            assert METHOD_PROPERTIES[m]["prediction"] == "yes"

    def test_sa_methods_have_medium_effort(self):
        for m in ("SAM", "SAML"):
            assert METHOD_PROPERTIES[m]["effort"] == "medium"


class TestEM:
    def test_em_is_optimal_on_its_space(self, sim):
        em = run_em(SPACE, sim, 3170.0)
        sam = run_sam(SPACE, sim, 3170.0, iterations=200, seed=1)
        assert em.measured_time <= sam.measured_time + 1e-12

    def test_em_counts_full_space(self, sim):
        em = run_em(SPACE, sim, 3170.0)
        assert em.experiments == SPACE.size()

    def test_fast_path_matches_slow_path(self, sim):
        fast = run_em(SPACE, sim, 2000.0, separable_fast_path=True)
        slow = run_em(SPACE, sim, 2000.0, separable_fast_path=False)
        assert fast.config == slow.config


class TestSAM:
    def test_respects_iteration_budget(self, sim):
        sam = run_sam(SPACE, sim, 3170.0, iterations=150, seed=0)
        assert sam.search_evaluations == 151  # budget + initial solution
        assert sam.annealing is not None

    def test_experiments_bounded_by_evaluations(self, sim):
        sam = run_sam(SPACE, sim, 3170.0, iterations=150, seed=0)
        assert sam.experiments <= sam.search_evaluations


class TestSAMLAndEML:
    def test_saml_uses_one_experiment(self, sim, ml):
        saml = run_saml(SPACE, ml, sim, 3170.0, iterations=300, seed=0)
        assert saml.experiments == 1
        assert saml.method == "SAML"

    def test_saml_near_em(self, sim, ml):
        em = run_em(SPACE, sim, 3170.0)
        saml = run_saml(SPACE, ml, sim, 3170.0, iterations=500, seed=0)
        gap = abs(saml.measured_time - em.measured_time) / em.measured_time
        assert gap < 0.25  # near-optimal on the small space

    def test_eml_walks_whole_space_without_experiments(self, sim, ml):
        eml = run_eml(SPACE, ml, sim, 3170.0)
        assert eml.search_evaluations == SPACE.size()
        assert eml.experiments == 1

    def test_saml_converges_to_eml_with_budget(self, sim, ml):
        """SA on predictions can at best find the prediction-argmin."""
        eml = run_eml(SPACE, ml, sim, 3170.0)
        saml = run_saml(SPACE, ml, sim, 3170.0, iterations=3000, seed=2)
        assert saml.search_energy.value >= eml.search_energy.value - 1e-12


class TestDispatch:
    def test_run_method_names(self, sim, ml):
        for name in ("em", "EML", "Sam", "SAML"):
            res = run_method(name, SPACE, sim, 1000.0, ml=ml, iterations=50)
            assert res.method == name.upper()

    def test_ml_methods_require_evaluator(self, sim):
        with pytest.raises(ValueError, match="requires"):
            run_method("SAML", SPACE, sim, 1000.0)
        with pytest.raises(ValueError, match="requires"):
            run_method("EML", SPACE, sim, 1000.0)

    def test_unknown_method(self, sim):
        with pytest.raises(ValueError, match="unknown method"):
            run_method("GA", SPACE, sim, 1000.0)
