"""Cross-platform tuning campaigns (core/campaign.py)."""

import multiprocessing

import pytest

from repro.core import platform_space, tune_campaign, tune_platform
from repro.core.campaign import CampaignResult
from repro.machines import MANYCORE, get_platform, platform_names

SIZE_MB = 600.0
ITERS = 120


@pytest.fixture(scope="module")
def sam_campaign() -> CampaignResult:
    """One small SAM campaign across the whole registered fleet."""
    return tune_campaign(method="SAM", size_mb=SIZE_MB, iterations=ITERS, seed=0)


class TestTunePlatform:
    def test_report_fields_are_consistent(self):
        r = tune_platform("emil", method="SAM", size_mb=SIZE_MB, iterations=ITERS)
        assert r.platform == "Emil"
        assert r.method == "SAM"
        assert r.space_size == 19926
        assert r.measured_time > 0 and r.em_time > 0
        assert r.config in platform_space(get_platform("emil"))

    def test_method_never_beats_the_enumeration_optimum(self):
        # EM scans the same deterministic measurement landscape the
        # method searches, so the method's config can only tie it.
        r = tune_platform("slowlink", method="SAM", size_mb=SIZE_MB, iterations=ITERS)
        assert r.quality_vs_em >= 1.0

    def test_budget_is_a_small_fraction_of_enumeration(self):
        r = tune_platform("dualphi", method="SAM", size_mb=SIZE_MB, iterations=ITERS)
        assert r.experiments < r.space_size
        assert 0.0 < r.budget_fraction < 0.1
        assert r.speedup_vs_em_budget > 10

    def test_deviceless_platform_tunes_host_only(self):
        r = tune_platform("manycore", method="SAM", size_mb=SIZE_MB, iterations=ITERS)
        assert r.config.host_fraction == 100.0
        assert r.device_only_time is None
        assert r.speedup_vs_device_only is None
        assert r.space_size == len(platform_space(MANYCORE))

    def test_ml_method_rejected_without_a_device(self):
        with pytest.raises(ValueError, match="no accelerator"):
            tune_platform("manycore", method="SAML", size_mb=SIZE_MB, iterations=ITERS)

    def test_em_method_reports_full_budget(self):
        r = tune_platform("manycore", method="EM", size_mb=SIZE_MB)
        assert r.experiments == r.space_size
        assert r.quality_vs_em == pytest.approx(1.0)


class TestTuneCampaign:
    def test_covers_every_registered_platform(self, sam_campaign):
        assert len(sam_campaign) == len(platform_names())
        assert {r.platform.lower() for r in sam_campaign} == set(platform_names())

    def test_rows_align_with_headers(self, sam_campaign):
        headers = sam_campaign.table_headers()
        for row in sam_campaign.table_rows():
            assert len(row) == len(headers)

    def test_report_lookup_by_name(self, sam_campaign):
        assert sam_campaign.report("emil").platform == "Emil"
        with pytest.raises(KeyError):
            sam_campaign.report("cray-1")

    def test_best_platform_is_the_fastest(self, sam_campaign):
        best = sam_campaign.best_platform()
        assert best.measured_time == min(r.measured_time for r in sam_campaign)

    def test_explicit_platform_subset(self):
        res = tune_campaign(
            ("emil", "slowlink"), method="SAM", size_mb=SIZE_MB, iterations=ITERS
        )
        assert [r.platform for r in res] == ["Emil", "SlowLink"]

    def test_saml_trains_and_tunes_a_platform(self):
        # ML search costs no experiments beyond the final measurement.
        res = tune_campaign(
            ("emil",), method="SAML", size_mb=SIZE_MB, iterations=ITERS
        )
        assert res.report("emil").experiments == 1  # only the final measurement

    def test_ml_campaign_skips_deviceless_platforms(self, monkeypatch):
        from repro.core import campaign as campaign_mod

        seen = []

        def fake_tune_platform(platform, **kwargs):
            # Campaign jobs carry resolved specs (runtime-registered
            # platforms must survive pool fan-out), not registry names.
            seen.append(platform.name.lower())
            return tune_platform(platform, method="EM", size_mb=SIZE_MB)

        monkeypatch.setattr(campaign_mod, "tune_platform", fake_tune_platform)
        campaign_mod.tune_campaign(method="SAML", size_mb=SIZE_MB)
        assert "manycore" not in seen
        assert "emil" in seen

    def test_empty_campaign_rejected(self):
        with pytest.raises(ValueError, match="at least one platform"):
            tune_campaign(())

    def test_process_fanout_matches_serial_results(self, sam_campaign):
        fanned = tune_campaign(
            method="SAM", size_mb=SIZE_MB, iterations=ITERS, seed=0, processes=2
        )
        assert [r.config for r in fanned] == [r.config for r in sam_campaign]
        assert [r.measured_time for r in fanned] == [
            r.measured_time for r in sam_campaign
        ]

    def test_engine_none_disables_engine_stats(self):
        res = tune_campaign(
            ("emil",), method="SAM", size_mb=SIZE_MB, iterations=40, engine=None
        )
        assert res.report("emil").engine_batches == 0


class TestEMReferenceCache:
    def test_same_cell_reuses_the_em_walk(self):
        from repro.core.campaign import _EM_CACHE, clear_em_cache

        clear_em_cache()
        first = tune_platform("emil", method="SAM", size_mb=SIZE_MB, iterations=ITERS)
        assert len(_EM_CACHE) == 1
        (cached,) = _EM_CACHE.values()
        # A second method on the same cell reuses the cached reference
        # instead of re-walking the space.
        second = tune_platform("emil", method="EM", size_mb=SIZE_MB, iterations=ITERS)
        assert len(_EM_CACHE) == 1
        assert first.em_config == second.em_config == cached.config
        assert first.em_time == second.em_time == cached.measured_time
        clear_em_cache()

    def test_cached_reference_matches_a_fresh_walk(self):
        from repro.core import run_em
        from repro.core.campaign import clear_em_cache
        from repro.machines import PlatformSimulator

        clear_em_cache()
        report = tune_platform("fathost", method="SAM", size_mb=SIZE_MB, iterations=ITERS)
        spec = get_platform("fathost")
        fresh = run_em(platform_space(spec), PlatformSimulator(spec, seed=0), SIZE_MB)
        assert report.em_config == fresh.config
        assert report.em_time == fresh.measured_time
        clear_em_cache()

    def test_distinct_cells_get_distinct_entries(self):
        from repro.core.campaign import _EM_CACHE, clear_em_cache

        clear_em_cache()
        tune_platform("emil", method="SAM", size_mb=SIZE_MB, iterations=ITERS)
        tune_platform("emil", method="SAM", size_mb=2 * SIZE_MB, iterations=ITERS)
        tune_platform("slowlink", method="SAM", size_mb=SIZE_MB, iterations=ITERS)
        assert len(_EM_CACHE) == 3
        clear_em_cache()

    def test_refine_is_part_of_the_cache_key(self):
        from repro.core.campaign import _EM_CACHE, clear_em_cache

        clear_em_cache()
        plain = tune_platform(
            "dualphi", method="SAM", size_mb=SIZE_MB, iterations=ITERS
        )
        refined = tune_platform(
            "dualphi", method="SAM", size_mb=SIZE_MB, iterations=ITERS, refine=2.5
        )
        # Different fidelity -> different cached reference; the refined
        # EM optimum can only improve on the coarse-grid one.
        assert len(_EM_CACHE) == 2
        assert refined.em_time <= plain.em_time
        clear_em_cache()

    def test_shards_are_not_part_of_the_cache_key(self):
        from repro.core.campaign import _EM_CACHE, clear_em_cache

        clear_em_cache()
        plain = tune_platform(
            "dualphi", method="SAM", size_mb=SIZE_MB, iterations=ITERS
        )
        sharded = tune_platform(
            "dualphi", method="SAM", size_mb=SIZE_MB, iterations=ITERS, shards=4
        )
        assert len(_EM_CACHE) == 1  # sharding is bit-identical: same cell
        assert sharded.em_time == plain.em_time
        assert sharded.em_config == plain.em_config
        clear_em_cache()


class TestEMCacheMergeBack:
    """Satellite fix: the EM cache must survive process fan-out."""

    def _worker_kwargs(self) -> dict:
        return dict(method="SAM", size_mb=SIZE_MB, iterations=ITERS, seed=0)

    def test_preseeded_worker_runs_no_duplicate_em_walk(self):
        from repro.core import campaign

        campaign.clear_em_cache()
        tune_platform("emil", **self._worker_kwargs())
        assert len(campaign._EM_CACHE) == 1
        snapshot = campaign._em_cache_snapshot()
        report, fresh = campaign._tune_platform_worker(
            ("emil", self._worker_kwargs(), snapshot)
        )
        # The worker found its cell pre-seeded: nothing fresh to return.
        assert fresh == {}
        assert report.em_config == next(iter(snapshot.values())).config
        campaign.clear_em_cache()

    def test_cold_worker_returns_its_fresh_entries(self):
        from repro.core import campaign

        campaign.clear_em_cache()
        report, fresh = campaign._tune_platform_worker(
            ("emil", self._worker_kwargs(), {})
        )
        assert len(fresh) == 1
        (entry,) = fresh.values()
        assert entry.config == report.em_config
        campaign.clear_em_cache()

    def test_pooled_campaign_populates_the_parent_cache(self):
        from repro.core import campaign

        campaign.clear_em_cache()
        first = tune_campaign(
            ("emil", "fathost"),
            method="SAM",
            size_mb=SIZE_MB,
            iterations=ITERS,
            processes=2,
        )
        # Worker-computed EM references travel back over the pipe and
        # land in the parent's cache.
        assert len(campaign._EM_CACHE) == 2
        cached = {entry.config for entry in campaign._EM_CACHE.values()}
        assert {r.em_config for r in first} == cached
        campaign.clear_em_cache()

    def test_repeated_campaign_never_rewalks_a_cell(self, monkeypatch):
        from repro.core import campaign

        campaign.clear_em_cache()
        first = tune_campaign(
            ("emil", "fathost"),
            method="SAM",
            size_mb=SIZE_MB,
            iterations=ITERS,
            processes=2,
        )
        # Every cell is now cached in the parent; a repeat campaign must
        # not enumerate again, pooled or not.
        def forbidden(*args, **kwargs):
            raise AssertionError("EM reference re-walked despite a warm cache")

        monkeypatch.setattr(campaign, "run_em", forbidden)
        again = tune_campaign(
            ("emil", "fathost"),
            method="SAM",
            size_mb=SIZE_MB,
            iterations=ITERS,
        )
        assert [r.em_time for r in again] == [r.em_time for r in first]
        assert len(campaign._EM_CACHE) == 2
        campaign.clear_em_cache()


class TestCampaignStartMethods:
    @pytest.fixture(scope="class")
    def serial(self) -> CampaignResult:
        return tune_campaign(
            ("emil", "slowlink"), method="SAM", size_mb=SIZE_MB, iterations=ITERS
        )

    @pytest.mark.parametrize(
        "start_method", multiprocessing.get_all_start_methods()
    )
    def test_results_are_start_method_independent(self, serial, start_method):
        fanned = tune_campaign(
            ("emil", "slowlink"),
            method="SAM",
            size_mb=SIZE_MB,
            iterations=ITERS,
            processes=2,
            start_method=start_method,
        )
        assert [r.config for r in fanned] == [r.config for r in serial]
        assert [r.measured_time for r in fanned] == [
            r.measured_time for r in serial
        ]

    def test_default_context_prefers_the_safest_method(self):
        from repro.core.pool import START_METHOD_PREFERENCE, pool_context

        available = multiprocessing.get_all_start_methods()
        want = next(m for m in START_METHOD_PREFERENCE if m in available)
        assert pool_context().get_start_method() == want

    def test_unknown_start_method_rejected(self):
        with pytest.raises(ValueError, match="not available"):
            tune_campaign(
                ("emil", "slowlink"),
                method="SAM",
                size_mb=SIZE_MB,
                iterations=ITERS,
                processes=2,
                start_method="no-such-method",
            )
