"""Budget-aware searcher portfolios under successive halving (core/portfolio.py)."""

import multiprocessing

import pytest

from repro.core.campaign import tune_matrix, tune_scenario
from repro.core.options import TuningOptions
from repro.core.params import workload_space
from repro.core.portfolio import (
    DEFAULT_PORTFOLIO,
    PORTFOLIO_ENTRANTS,
    PortfolioSpec,
    run_portfolio,
)
from repro.dna.workloads import get_workload
from repro.machines.simulator import PlatformSimulator
from repro.machines.spec import EMIL

SIZE_MB = 300.0
ITERS = 80
#: A cheap measurement-only schedule (no SAML -> no training grids).
SMALL = PortfolioSpec(rung0=20, eta=2, entrants=("SAM", "RS", "HC", "TABU"))


def small_race(spec=SMALL, iterations=ITERS, seed=0):
    workload = get_workload("short-read")
    space = workload_space(workload, EMIL)
    sim = PlatformSimulator(EMIL, workload.profile(), seed=seed)
    return run_portfolio(
        space, sim, SIZE_MB, spec=spec, iterations=iterations, seed=seed
    )


class TestPortfolioSpec:
    def test_default_schedule(self):
        assert DEFAULT_PORTFOLIO.rung0 == 125
        assert DEFAULT_PORTFOLIO.eta == 2
        assert DEFAULT_PORTFOLIO.entrants == PORTFOLIO_ENTRANTS

    def test_key_parse_round_trip(self):
        for spec in (
            DEFAULT_PORTFOLIO,
            SMALL,
            PortfolioSpec(rung0=50, eta=3, entrants=("GA", "ACO")),
        ):
            assert PortfolioSpec.parse(spec.key()) == spec

    def test_parse_accepts_abbreviated_forms(self):
        assert PortfolioSpec.parse("") == DEFAULT_PORTFOLIO
        assert PortfolioSpec.parse("sh") == DEFAULT_PORTFOLIO
        assert PortfolioSpec.parse("sh:50x3") == PortfolioSpec(rung0=50, eta=3)
        assert PortfolioSpec.parse("sh:50x3:RS+SAM") == PortfolioSpec(
            rung0=50, eta=3, entrants=("SAM", "RS")
        )

    def test_entrants_canonicalize_to_catalogue_order(self):
        spec = PortfolioSpec(entrants=("rs", "SAM", "hc"))
        assert spec.entrants == ("SAM", "RS", "HC")
        assert spec.key() == "sh:125x2:SAM+RS+HC"

    def test_validation_rejects_bad_schedules(self):
        with pytest.raises(ValueError, match="rung0"):
            PortfolioSpec(rung0=0)
        with pytest.raises(ValueError, match="eta"):
            PortfolioSpec(eta=1)
        with pytest.raises(ValueError, match="unknown"):
            PortfolioSpec(entrants=("SAM", "CMAES"))
        with pytest.raises(ValueError, match="duplicate"):
            PortfolioSpec(entrants=("SAM", "SAM"))
        with pytest.raises(ValueError, match="empty"):
            PortfolioSpec(entrants=())
        with pytest.raises(ValueError, match="unparseable"):
            PortfolioSpec.parse("hyperband:3")


class TestRace:
    @pytest.fixture(scope="class")
    def race(self):
        return small_race()

    def test_race_is_deterministic(self, race):
        result, ledger = race
        again_result, again_ledger = small_race()
        assert again_result == result
        assert again_ledger == ledger

    def test_winner_survives_to_the_final_rung(self, race):
        _result, ledger = race
        final = [e for e in ledger.entries if e.rung == ledger.rungs - 1]
        assert ledger.winner in {e.method for e in final if not e.eliminated}
        # The final rung runs at the full single-method budget.
        assert all(e.budget == ITERS for e in final)

    def test_ledger_accounting_invariants(self, race):
        result, ledger = race
        # Distinct measured configs can never exceed objective scores.
        assert ledger.experiments <= ledger.search_evaluations
        assert result.experiments == ledger.experiments
        assert result.search_evaluations == ledger.search_evaluations
        # Spend sums the per-rung budgets of each entrant's entries.
        for method, spend in ledger.spend.items():
            assert spend == sum(
                e.budget for e in ledger.entries if e.method == method
            )
        # An eliminated entrant never reappears at a later rung.
        for method, out_rung in ledger.eliminations:
            assert not any(
                e.rung > out_rung for e in ledger.entries if e.method == method
            )

    def test_rung_budgets_follow_the_geometric_schedule(self, race):
        _result, ledger = race
        for e in ledger.entries:
            expected = min(ITERS, SMALL.rung0 * SMALL.eta**e.rung)
            # A lone survivor jumps straight to the full budget instead.
            assert e.budget in (expected, ITERS)

    def test_suggestion_is_the_best_measured_config_of_the_race(self, race):
        result, ledger = race
        assert result.method == f"PORTFOLIO[{ledger.winner}]"
        assert result.measured.value == min(e.value for e in ledger.entries)

    def test_lone_entrant_runs_once_at_full_budget(self):
        result, ledger = small_race(
            spec=PortfolioSpec(rung0=20, eta=2, entrants=("RS",))
        )
        assert ledger.rungs == 1
        assert ledger.entries[0].budget == ITERS
        assert ledger.winner == "RS"
        assert result.search_evaluations == ITERS

    def test_ml_entrants_drop_without_a_predictor(self):
        _result, ledger = small_race(
            spec=PortfolioSpec(rung0=20, eta=2, entrants=("SAM", "SAML", "RS"))
        )
        raced = {e.method for e in ledger.entries}
        assert "SAML" not in raced
        assert raced == {"SAM", "RS"}

    def test_all_ml_portfolio_without_predictor_is_rejected(self):
        with pytest.raises(ValueError, match="predictor"):
            small_race(spec=PortfolioSpec(rung0=20, eta=2, entrants=("SAML",)))

    def test_bad_iteration_budget_is_rejected(self):
        with pytest.raises(ValueError, match="iterations"):
            small_race(iterations=0)


class TestPortfolioThroughCampaign:
    def test_scenario_report_carries_the_ledger(self):
        cell = tune_scenario(
            "short-read",
            "emil",
            method="SAM",
            iterations=ITERS,
            options=TuningOptions(portfolio=SMALL),
        )
        assert cell.portfolio is not None
        assert cell.portfolio.spec == SMALL
        assert cell.report.method == f"PORTFOLIO[{cell.portfolio.winner}]"
        assert cell.report.experiments == cell.portfolio.experiments
        # Measurement-only entrants: no training charge on the report.
        assert cell.report.training_experiments == 0
        assert cell.total_experiments == cell.portfolio.experiments

    def test_deviceless_platform_races_without_saml(self):
        cell = tune_scenario(
            "short-read",
            "manycore",
            method="SAM",
            iterations=ITERS,
            options=TuningOptions(
                portfolio=PortfolioSpec(rung0=20, eta=2, entrants=("SAM", "SAML"))
            ),
        )
        assert {e.method for e in cell.portfolio.entries} == {"SAM"}
        assert cell.report.training_experiments == 0


class TestPortfolioMatrixDeterminism:
    WORKLOADS = ("short-read",)
    PLATFORMS = ("emil", "slowlink")

    @pytest.fixture(scope="class")
    def serial(self):
        return tune_matrix(
            self.WORKLOADS,
            self.PLATFORMS,
            method="SAM",
            iterations=ITERS,
            options=TuningOptions(portfolio=SMALL),
        )

    @pytest.mark.parametrize("start_method", multiprocessing.get_all_start_methods())
    def test_results_are_process_count_independent(self, serial, start_method):
        fanned = tune_matrix(
            self.WORKLOADS,
            self.PLATFORMS,
            method="SAM",
            iterations=ITERS,
            options=TuningOptions(
                portfolio=SMALL, processes=2, start_method=start_method
            ),
        )
        assert [r.report for r in fanned] == [r.report for r in serial]
        assert [r.portfolio for r in fanned] == [r.portfolio for r in serial]
