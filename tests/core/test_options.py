"""The unified TuningOptions object and its compatibility layer."""

import dataclasses

import pytest

from repro.core import (
    UNSET,
    CachedEngine,
    TuningOptions,
    make_engine,
    resolve_options,
    tune_matrix,
    tune_platform,
    tune_scenario,
)

ITERS = 60


class TestDefaultsAndValidation:
    def test_defaults_match_the_historical_keywords(self):
        opts = TuningOptions()
        assert opts.engine == "cached+batched"
        assert opts.batch_size == 64
        assert opts.shards == 1
        assert opts.refine is None
        assert opts.processes is None
        assert opts.start_method is None

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            TuningOptions().engine = "serial"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"batch_size": 0},
            {"shards": 0},
            {"refine": 0.0},
            {"refine": -2.5},
            {"processes": 0},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TuningOptions(**kwargs)


class TestResolveOptions:
    def test_no_options_no_keywords_is_the_default(self):
        assert resolve_options(None) == TuningOptions()

    def test_unset_keywords_are_dropped(self):
        base = TuningOptions(engine="serial", shards=4)
        assert resolve_options(base, engine=UNSET, shards=UNSET) is base

    def test_explicit_keyword_overrides_the_options_field(self):
        base = TuningOptions(engine="serial", batch_size=32)
        merged = resolve_options(base, engine="cached", batch_size=UNSET)
        assert merged.engine == "cached"
        assert merged.batch_size == 32  # untouched field survives

    def test_explicit_none_is_an_override_not_a_drop(self):
        merged = resolve_options(TuningOptions(refine=5.0), refine=None)
        assert merged.refine is None


class TestViews:
    def test_for_cell_strips_fanout_knobs_only(self):
        opts = TuningOptions(engine="cached", processes=4, start_method="spawn")
        cell = opts.for_cell()
        assert cell.processes is None and cell.start_method is None
        assert cell.engine == "cached" and cell.batch_size == opts.batch_size

    def test_for_cell_is_identity_without_fanout_knobs(self):
        opts = TuningOptions()
        assert opts.for_cell() is opts

    def test_engine_instance_materializes_names(self):
        engine = TuningOptions(engine="cached", batch_size=8).engine_instance()
        assert isinstance(engine, CachedEngine)

    def test_engine_instance_passes_instances_through(self):
        shared = make_engine("batched", batch_size=16)
        assert TuningOptions(engine=shared).engine_instance() is shared

    def test_engine_name_is_stable_across_forms(self):
        assert TuningOptions(engine=None).engine_name is None
        assert TuningOptions(engine="serial").engine_name == "serial"
        instance = make_engine("batched", batch_size=16)
        assert TuningOptions(engine=instance).engine_name == "BatchedEngine"


class TestEntryPointEquivalence:
    """options= and the legacy keywords must produce identical results."""

    def test_tune_platform_options_equals_legacy(self):
        legacy = tune_platform(
            "emil", iterations=ITERS, seed=0, engine="cached", batch_size=16
        )
        unified = tune_platform(
            "emil",
            iterations=ITERS,
            seed=0,
            options=TuningOptions(engine="cached", batch_size=16),
        )
        assert unified == legacy

    def test_tune_scenario_keyword_overrides_options(self):
        base = TuningOptions(engine="serial")
        overridden = tune_scenario(
            "short-read", "emil", iterations=ITERS, seed=0,
            options=base, engine="cached+batched",
        )
        direct = tune_scenario(
            "short-read", "emil", iterations=ITERS, seed=0,
            engine="cached+batched",
        )
        assert overridden == direct

    def test_tune_matrix_accepts_engine_instances(self):
        """Regression: the matrix path accepts EvaluationEngine instances.

        ``tune_matrix`` historically annotated ``engine`` as ``str | None``
        while every other entry point also took instances; a shared
        instance through the serial matrix path must work and aggregate
        its statistics across cells.
        """
        shared = make_engine("cached+batched", batch_size=64)
        res = tune_matrix(
            ("short-read",), ("emil", "slowlink"),
            iterations=ITERS, seed=0,
            options=TuningOptions(engine=shared),
        )
        named = tune_matrix(
            ("short-read",), ("emil", "slowlink"),
            iterations=ITERS, seed=0, engine="cached+batched",
        )
        assert [c.report.config for c in res.reports] == [
            c.report.config for c in named.reports
        ]
        # The shared instance saw every cell's evaluations.
        assert shared.stats.batches >= sum(c.report.engine_batches for c in named.reports)
