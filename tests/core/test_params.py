"""Parameter space (Table I) and configuration validation."""

import numpy as np
import pytest

from repro.core import (
    DEFAULT_SPACE,
    DEVICE_THREADS,
    EVAL_HOST_THREADS,
    FRACTIONS,
    TABLE1_HOST_THREADS,
    ParameterSpace,
    SystemConfiguration,
    device_only_config,
    host_only_config,
)


class TestGrids:
    def test_eval_host_threads_six_values(self):
        assert EVAL_HOST_THREADS == (2, 6, 12, 24, 36, 48)

    def test_table1_host_threads_includes_four(self):
        assert 4 in TABLE1_HOST_THREADS
        assert len(TABLE1_HOST_THREADS) == 7

    def test_device_threads_nine_values(self):
        assert DEVICE_THREADS == (2, 4, 8, 16, 30, 60, 120, 180, 240)

    def test_fraction_grid_has_41_values(self):
        assert len(FRACTIONS) == 41
        assert FRACTIONS[0] == 0.0
        assert FRACTIONS[-1] == 100.0

    def test_space_size_is_papers_19926(self):
        # E13 of the experiment index: Eq. 1 product.
        assert DEFAULT_SPACE.size() == 19926
        assert len(DEFAULT_SPACE) == 19926


class TestSystemConfiguration:
    def make(self, **kw):
        base = dict(
            host_threads=24,
            host_affinity="scatter",
            device_threads=120,
            device_affinity="balanced",
            host_fraction=60.0,
        )
        base.update(kw)
        return SystemConfiguration(**base)

    def test_device_fraction_is_complement(self):
        assert self.make(host_fraction=62.5).device_fraction == 37.5

    def test_with_fraction(self):
        c = self.make().with_fraction(10.0)
        assert c.host_fraction == 10.0
        assert c.host_threads == 24

    def test_describe(self):
        assert self.make().describe() == "24xscatter | 120xbalanced | 60/40"

    @pytest.mark.parametrize(
        "kw",
        [
            {"host_threads": 0},
            {"device_threads": -1},
            {"host_affinity": "balanced"},
            {"device_affinity": "none"},
            {"host_fraction": 101.0},
            {"host_fraction": -0.5},
        ],
    )
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            self.make(**kw)

    def test_baseline_configs(self):
        assert host_only_config().host_fraction == 100.0
        assert host_only_config().host_threads == 48
        assert device_only_config().host_fraction == 0.0
        assert device_only_config().device_threads == 240


class TestSpaceOperations:
    def test_iteration_count_matches_size(self):
        small = ParameterSpace(
            host_threads=(2, 4),
            device_threads=(8, 16),
            fractions=(0.0, 50.0, 100.0),
        )
        assert len(list(small.iter_configs())) == small.size() == 2 * 3 * 2 * 3 * 3

    def test_contains(self):
        c = SystemConfiguration(24, "scatter", 120, "balanced", 60.0)
        assert c in DEFAULT_SPACE
        assert c.with_fraction(60.1) not in DEFAULT_SPACE

    def test_random_config_stays_in_space(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            assert DEFAULT_SPACE.random_config(rng) in DEFAULT_SPACE

    def test_neighbor_changes_at_most_one_parameter(self):
        rng = np.random.default_rng(1)
        c = DEFAULT_SPACE.random_config(rng)
        for _ in range(100):
            n = DEFAULT_SPACE.neighbor(c, rng)
            assert n in DEFAULT_SPACE
            diffs = sum(
                [
                    n.host_threads != c.host_threads,
                    n.host_affinity != c.host_affinity,
                    n.device_threads != c.device_threads,
                    n.device_affinity != c.device_affinity,
                    n.host_fraction != c.host_fraction,
                ]
            )
            assert diffs <= 1
            c = n

    def test_neighbor_fraction_moves_bounded(self):
        rng = np.random.default_rng(2)
        space = ParameterSpace(max_fraction_steps=2)
        c = space.random_config(rng)
        for _ in range(200):
            n = space.neighbor(c, rng)
            if n.host_fraction != c.host_fraction:
                assert abs(n.host_fraction - c.host_fraction) <= 2 * 2.5 + 1e-9
            c = n

    def test_rejects_empty_axis(self):
        with pytest.raises(ValueError, match="non-empty"):
            ParameterSpace(host_threads=())

    def test_rejects_duplicate_values(self):
        with pytest.raises(ValueError, match="duplicates"):
            ParameterSpace(host_threads=(2, 2))

    def test_rejects_bad_fraction_steps(self):
        with pytest.raises(ValueError, match="max_fraction_steps"):
            ParameterSpace(max_fraction_steps=0)


class TestPlatformSpace:
    """Platform-fitted configuration spaces (platform_space)."""

    def test_emil_gets_exactly_the_default_space(self):
        from repro.core import platform_space
        from repro.machines import EMIL

        assert platform_space(EMIL) is DEFAULT_SPACE

    def test_grids_respect_platform_capacities(self):
        from repro.core import platform_space
        from repro.machines import all_platforms

        for spec in all_platforms():
            space = platform_space(spec)
            assert max(space.host_threads) == spec.host_hardware_threads
            if spec.has_device:
                assert max(space.device_threads) == spec.max_device_threads
            assert min(space.host_threads) >= 1

    def test_grid_shape_scales_with_capacity(self):
        from repro.core import platform_space
        from repro.machines import FATHOST

        space = platform_space(FATHOST)
        # Same number of host grid points as Emil's, rescaled to 128.
        assert len(space.host_threads) == len(EVAL_HOST_THREADS)
        assert space.host_threads[-1] == 128

    def test_deviceless_platform_collapses_to_host_only(self):
        from repro.core import platform_space
        from repro.machines import MANYCORE

        space = platform_space(MANYCORE)
        assert space.fractions == (100.0,)
        assert space.device_threads == (1,)
        assert len(space.device_affinities) == 1
        assert space.size() == len(space.host_threads) * 3
        for config in space:
            assert config.host_fraction == 100.0

    def test_every_fitted_config_is_measurable(self):
        from repro.core import platform_space
        from repro.machines import PlatformSimulator, all_platforms

        for spec in all_platforms():
            space = platform_space(spec)
            sim = PlatformSimulator(spec, seed=0)
            assert sim.measure_host(max(space.host_threads), "scatter", 10.0) > 0
            if spec.has_device:
                assert (
                    sim.measure_device(max(space.device_threads), "balanced", 10.0) > 0
                )
