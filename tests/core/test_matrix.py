"""Workload x platform scenario matrices (core/campaign.py)."""

import pytest

from repro.core import tune_matrix, tune_scenario
from repro.core.campaign import MatrixResult
from repro.dna.workloads import SHORT_READ, get_workload

WORKLOADS = ("dna-paper", "short-read", "dense-motif")
PLATFORMS = ("emil", "fathost", "slowlink")
ITERS = 100


@pytest.fixture(scope="module")
def sam_matrix() -> MatrixResult:
    """One small SAM matrix over a 3x3 scenario subset."""
    return tune_matrix(WORKLOADS, PLATFORMS, method="SAM", iterations=ITERS, seed=0)


class TestTuneScenario:
    def test_cell_defaults_to_the_workload_scale(self):
        cell = tune_scenario("short-read", "emil", method="SAM", iterations=ITERS)
        assert cell.workload == "short-read"
        assert cell.platform == "Emil"
        assert cell.size_mb == SHORT_READ.sequence_mb

    def test_explicit_size_overrides_the_workload_scale(self):
        cell = tune_scenario(
            "short-read", "emil", method="SAM", size_mb=512.0, iterations=ITERS
        )
        assert cell.size_mb == 512.0

    def test_cell_space_is_scenario_fitted(self):
        # short-read coarsens the fraction grid: 6*3 * 9*3 * 21 fractions.
        cell = tune_scenario("short-read", "emil", method="SAM", iterations=ITERS)
        assert cell.report.space_size == 6 * 3 * 9 * 3 * 21

    def test_optimum_distance_is_at_least_one(self):
        cell = tune_scenario("dense-motif", "slowlink", method="SAM", iterations=ITERS)
        assert cell.optimum_distance >= 1.0


class TestTuneMatrix:
    def test_shape_is_workloads_times_platforms(self, sam_matrix):
        assert len(sam_matrix) == len(WORKLOADS) * len(PLATFORMS)
        assert sam_matrix.workloads == tuple(get_workload(w).name for w in WORKLOADS)
        assert sam_matrix.platforms == ("Emil", "FatHost", "SlowLink")

    def test_rows_align_with_headers(self, sam_matrix):
        headers = sam_matrix.table_headers()
        rows = sam_matrix.table_rows()
        assert len(rows) == len(sam_matrix)
        for row in rows:
            assert len(row) == len(headers)

    def test_cell_lookup(self, sam_matrix):
        cell = sam_matrix.cell("short-read", "fathost")
        assert cell.workload == "short-read" and cell.platform == "FatHost"
        with pytest.raises(KeyError):
            sam_matrix.cell("short-read", "cray-1")

    def test_row_lookup_covers_every_platform(self, sam_matrix):
        row = sam_matrix.row("dna-paper")
        assert [r.platform for r in row] == ["Emil", "FatHost", "SlowLink"]
        with pytest.raises(KeyError):
            sam_matrix.row("weather-sim")

    def test_best_platform_for_is_the_fastest_cell(self, sam_matrix):
        best = sam_matrix.best_platform_for("dense-motif")
        times = [r.report.measured_time for r in sam_matrix.row("dense-motif")]
        assert best.report.measured_time == min(times)

    def test_best_cell_maximizes_host_only_speedup(self, sam_matrix):
        best = sam_matrix.best_cell()
        assert best.speedup_vs_host_only == max(
            r.speedup_vs_host_only for r in sam_matrix
        )

    def test_cells_match_standalone_scenarios(self, sam_matrix):
        solo = tune_scenario("dna-paper", "emil", method="SAM", iterations=ITERS, seed=0)
        cell = sam_matrix.cell("dna-paper", "emil")
        assert cell.config == solo.config
        assert cell.report.measured_time == solo.report.measured_time

    def test_workload_changes_the_suggested_landscape(self, sam_matrix):
        # Scenario diversity must be visible in the reports: the same
        # platform tunes to different spaces across workloads.
        column = sam_matrix.column("Emil")
        assert [r.workload for r in column] == list(sam_matrix.workloads)
        sizes = {r.report.space_size for r in column}
        assert len(sizes) >= 2

    def test_process_fanout_matches_serial_results(self, sam_matrix):
        fanned = tune_matrix(
            WORKLOADS, PLATFORMS, method="SAM", iterations=ITERS, seed=0, processes=2
        )
        assert [r.config for r in fanned] == [r.config for r in sam_matrix]
        assert [r.report.measured_time for r in fanned] == [
            r.report.measured_time for r in sam_matrix
        ]

    def test_empty_matrix_rejected(self):
        with pytest.raises(ValueError, match="at least one workload"):
            tune_matrix((), PLATFORMS)

    def test_ml_matrix_skips_deviceless_platforms(self):
        res = tune_matrix(("dna-paper",), None, method="SAML", iterations=40,
                          size_mb=500.0)
        assert "ManyCore" not in res.platforms
        assert "Emil" in res.platforms

    def test_em_cells_report_full_budget(self):
        res = tune_matrix(("short-read",), ("manycore",), method="EM")
        cell = res.cell("short-read", "manycore")
        assert cell.report.experiments == cell.report.space_size
        assert cell.optimum_distance == pytest.approx(1.0)

    def test_saml_cells_train_at_the_workload_scale(self, monkeypatch):
        # The ML path must hand the registered spec to transfer training
        # so its grid rescales (short-read: sizes cap at 300 MB, not the
        # paper's 3170), keeping predictions inside the trained range.
        from repro.core import training as training_mod
        from repro.core.training import training_sizes_for
        from repro.ml.transfer import clear_transfer_cache

        clear_transfer_cache()  # force this cell to actually train
        grids = []
        real = training_mod.generate_training_data

        def spy(sim, *, sizes_mb, **kwargs):
            grids.append((sizes_mb, real(sim, sizes_mb=sizes_mb, **kwargs)))
            return grids[-1][1]

        monkeypatch.setattr(training_mod, "generate_training_data", spy)
        try:
            tune_scenario("short-read", "emil", method="SAML", iterations=30)
        finally:
            clear_transfer_cache()
        ((sizes, data),) = grids
        assert sizes == training_sizes_for(SHORT_READ)
        assert data.host.X[:, -1].max() <= SHORT_READ.sequence_mb
