"""Seeded fault plans and injectors (reliability/faults.py)."""

import time

import pytest

from repro.reliability import (
    KIND_CRASH,
    KIND_HANG,
    KIND_IO_ERROR,
    KIND_TORN_WRITE,
    SITE_POOL_TASK,
    SITE_STORE_APPEND,
    FaultAction,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    InjectedIOError,
    armed_injector,
    injected_faults,
    maybe_action,
    perform_action,
)


class TestFaultSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="after"):
            FaultSpec("s", KIND_CRASH, after=-1)
        with pytest.raises(ValueError, match="times"):
            FaultSpec("s", KIND_CRASH, times=0)
        with pytest.raises(ValueError, match="duration_s"):
            FaultSpec("s", KIND_HANG)  # hangs need a positive duration

    def test_frozen_defaults(self):
        spec = FaultSpec("s", KIND_CRASH)
        assert (spec.match, spec.after, spec.times) == (None, 0, 1)


class TestFaultPlan:
    def test_same_seed_same_plan(self):
        assert FaultPlan.adversarial(5, tasks=8) == FaultPlan.adversarial(5, tasks=8)
        assert FaultPlan.adversarial_service(5) == FaultPlan.adversarial_service(5)

    def test_seed_moves_the_faults(self):
        plans = {FaultPlan.adversarial(s, tasks=16).specs for s in range(8)}
        assert len(plans) > 1  # the adversary is seed-addressed, not fixed

    def test_crash_and_hang_hit_distinct_tasks(self):
        for seed in range(16):
            plan = FaultPlan.adversarial(seed, tasks=4)
            crash, hang = plan.specs[0], plan.specs[1]
            assert crash.kind == KIND_CRASH and hang.kind == KIND_HANG
            assert crash.match != hang.match
            assert int(crash.match) in range(4) and int(hang.match) in range(4)

    def test_single_task_plan_is_legal(self):
        plan = FaultPlan.adversarial(3, tasks=1)
        assert plan.specs[0].match == plan.specs[1].match == "0"

    def test_tasks_validated(self):
        with pytest.raises(ValueError, match="tasks"):
            FaultPlan.adversarial(0, tasks=0)


class TestFaultInjector:
    def test_firing_window(self):
        plan = FaultPlan(specs=(FaultSpec("x", KIND_CRASH, after=1, times=2),))
        injector = FaultInjector(plan)
        fired = [injector.action("x") is not None for _ in range(5)]
        assert fired == [False, True, True, False, False]

    def test_match_keying(self):
        plan = FaultPlan(specs=(FaultSpec("x", KIND_CRASH, match="a"),))
        injector = FaultInjector(plan)
        assert injector.action("x", "b") is None  # wrong key: not even counted
        assert injector.action("x", "a") is not None
        assert injector.action("x", "a") is None  # window consumed

    def test_site_isolation(self):
        plan = FaultPlan(specs=(FaultSpec("x", KIND_CRASH),))
        injector = FaultInjector(plan)
        assert injector.action("y") is None
        assert injector.action("x") is not None

    def test_one_hit_consumes_every_matching_spec(self):
        # Two specs on the same site advance together; the first in-window
        # spec wins the hit and the second never fires on a later hit.
        plan = FaultPlan(
            specs=(FaultSpec("x", KIND_CRASH), FaultSpec("x", KIND_IO_ERROR))
        )
        injector = FaultInjector(plan)
        first = injector.action("x")
        assert first is not None and first.kind == KIND_CRASH
        assert injector.action("x") is None

    def test_fired_counts_by_site_and_kind(self):
        plan = FaultPlan(specs=(FaultSpec(SITE_POOL_TASK, KIND_CRASH, times=2),))
        injector = FaultInjector(plan)
        assert injector.fired() == {}
        for _ in range(3):
            injector.action(SITE_POOL_TASK)
        assert injector.fired() == {f"{SITE_POOL_TASK}:{KIND_CRASH}": 2}


class TestArming:
    def test_disarmed_is_a_noop(self):
        assert armed_injector() is None
        assert maybe_action(SITE_POOL_TASK, "0") is None

    def test_injected_faults_arms_for_the_block(self):
        plan = FaultPlan(specs=(FaultSpec(SITE_STORE_APPEND, KIND_TORN_WRITE),))
        with injected_faults(plan) as injector:
            assert armed_injector() is injector
            action = maybe_action(SITE_STORE_APPEND, "em")
            assert action is not None and action.kind == KIND_TORN_WRITE
        assert armed_injector() is None

    def test_disarms_even_on_error(self):
        with pytest.raises(RuntimeError):
            with injected_faults(FaultPlan()):
                raise RuntimeError("boom")
        assert armed_injector() is None


class TestPerformAction:
    def test_none_is_a_noop(self):
        perform_action(None)

    def test_crash_raises(self):
        with pytest.raises(InjectedCrash, match="site"):
            perform_action(FaultAction(KIND_CRASH, "site", "0"))

    def test_io_error_raises_oserror(self):
        with pytest.raises(InjectedIOError):
            perform_action(FaultAction(KIND_IO_ERROR, "site", "em"))
        assert issubclass(InjectedIOError, OSError)

    def test_hang_sleeps_for_the_duration(self):
        t0 = time.monotonic()
        perform_action(FaultAction(KIND_HANG, "site", "0", duration_s=0.02))
        assert time.monotonic() - t0 >= 0.02

    def test_torn_write_is_the_stores_job(self):
        # The store owns the bytes; the generic performer must not raise.
        perform_action(FaultAction(KIND_TORN_WRITE, "site", "em"))
