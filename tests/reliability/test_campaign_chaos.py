"""Campaign/matrix bit-identity under seeded fault plans (the headline invariant).

A pooled ``tune_matrix`` run under an adversarial plan — one cell
crashing, one hanging past the per-attempt deadline — must return a
result *equal* to the fault-free run: measurements are pure functions
of their arguments, so retries and degradations are unobservable in
the payload.  Only the ``reliability`` ledger (excluded from equality)
tells the runs apart.
"""

import multiprocessing

import pytest

from repro.core import tune_campaign, tune_matrix
from repro.core.options import TuningOptions
from repro.reliability import FaultPlan, RetryPolicy, RetryStats, injected_faults

WORKLOADS = ("dna-paper", "short-read")
PLATFORMS = ("emil", "slowlink")
ITERS = 60
SIZE_MB = 600.0

SERIAL_RETRY = RetryPolicy(max_attempts=3, backoff_s=0.01, max_backoff_s=0.05)
POOLED_RETRY = RetryPolicy(
    max_attempts=3, timeout_s=1.0, backoff_s=0.01, max_backoff_s=0.05
)


def matrix(options=None):
    return tune_matrix(
        WORKLOADS,
        PLATFORMS,
        method="SAM",
        size_mb=SIZE_MB,
        iterations=ITERS,
        seed=0,
        options=options,
    )


class TestMatrixChaos:
    def test_serial_run_matches_fault_free_twin(self):
        baseline = matrix()
        assert baseline.reliability is not None and baseline.reliability.clean
        plan = FaultPlan.adversarial(seed=5, tasks=4, hang_s=0.02)
        with injected_faults(plan):
            chaotic = matrix(TuningOptions(retry=SERIAL_RETRY))
        assert chaotic == baseline  # reliability is compare=False by design
        assert not chaotic.reliability.clean
        assert chaotic.reliability.retries >= 1

    def test_pooled_run_matches_fault_free_twin(self):
        baseline = matrix()
        plan = FaultPlan.adversarial(seed=9, tasks=4, hang_s=2.5)
        with injected_faults(plan):
            chaotic = matrix(
                TuningOptions(processes=2, start_method="fork", retry=POOLED_RETRY)
            )
        assert chaotic == baseline
        assert not chaotic.reliability.clean
        assert chaotic.reliability.crashes + chaotic.reliability.timeouts >= 1

    def test_ledger_rides_on_the_result(self):
        result = matrix()
        assert isinstance(result.reliability, RetryStats)
        assert result.reliability.attempts >= len(result.reports)


class TestCampaignChaos:
    def test_campaign_survives_the_adversary(self):
        baseline = tune_campaign(
            PLATFORMS, method="SAM", size_mb=SIZE_MB, iterations=ITERS
        )
        plan = FaultPlan.adversarial(seed=2, tasks=2, hang_s=0.02)
        with injected_faults(plan):
            chaotic = tune_campaign(
                PLATFORMS,
                method="SAM",
                size_mb=SIZE_MB,
                iterations=ITERS,
                options=TuningOptions(retry=SERIAL_RETRY),
            )
        assert chaotic == baseline
        assert not chaotic.reliability.clean

    def test_adversary_never_changes_the_winner(self):
        # A different seed steers the faults at different cells; the
        # tuned configurations must not move.
        baseline = tune_campaign(
            PLATFORMS, method="SAM", size_mb=SIZE_MB, iterations=ITERS
        )
        for seed in (1, 4):
            plan = FaultPlan.adversarial(seed=seed, tasks=2, hang_s=0.02)
            with injected_faults(plan):
                chaotic = tune_campaign(
                    PLATFORMS,
                    method="SAM",
                    size_mb=SIZE_MB,
                    iterations=ITERS,
                    options=TuningOptions(retry=SERIAL_RETRY),
                )
            assert [r.config for r in chaotic] == [r.config for r in baseline]
            assert [r.measured_time for r in chaotic] == [
                r.measured_time for r in baseline
            ]


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="pooled chaos pins fork (see test_pool_chaos module docstring)",
)
class TestPooledCampaignChaos:
    def test_pooled_campaign_matches_fault_free_twin(self):
        baseline = tune_campaign(
            PLATFORMS, method="SAM", size_mb=SIZE_MB, iterations=ITERS
        )
        plan = FaultPlan.adversarial(seed=13, tasks=2, hang_s=2.5)
        with injected_faults(plan):
            chaotic = tune_campaign(
                PLATFORMS,
                method="SAM",
                size_mb=SIZE_MB,
                iterations=ITERS,
                options=TuningOptions(
                    processes=2, start_method="fork", retry=POOLED_RETRY
                ),
            )
        assert chaotic == baseline
        assert not chaotic.reliability.clean
