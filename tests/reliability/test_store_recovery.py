"""Crash-safe store recovery: torn tails, write retries, compaction."""

import json
import os

import pytest

from repro.core.params import workload_space
from repro.core.methods import run_method
from repro.core.campaign import _em_cache_key
from repro.dna.workloads import get_workload
from repro.machines import get_platform
from repro.machines.simulator import PlatformSimulator
from repro.reliability import (
    KIND_IO_ERROR,
    KIND_TORN_WRITE,
    SITE_STORE_APPEND,
    SITE_STORE_IO,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    injected_faults,
)
from repro.service import ResultStore
from repro.service.store import STORE_SCHEMA_VERSION

SIZE_MB = 600.0
QUICK = RetryPolicy(max_attempts=3, backoff_s=0.0, max_backoff_s=0.0, jitter=0.0)


def em_reference():
    spec = get_platform("emil")
    workload = get_workload("short-read")
    space = workload_space(workload, spec)
    sim = PlatformSimulator(spec, workload.profile(), seed=0)
    result = run_method("EM", space, sim, SIZE_MB)
    return _em_cache_key(spec, workload, space, SIZE_MB, 0, None), result


class TestTornTailRecovery:
    def test_torn_tail_is_quarantined_on_restart(self, tmp_path):
        path = tmp_path / "s.jsonl"
        key, result = em_reference()
        ResultStore(path).put_em(key, result)
        with open(path, "ab") as fh:
            fh.write(b'{"schema":2,"kind":"em","key":"crash')  # no newline
        recovered = ResultStore(path)
        assert recovered.stats.quarantined == 1
        assert recovered.count("em") == 1
        assert recovered.get_em(key) == result

    def test_quarantined_tail_stays_one_corrupt_line(self, tmp_path):
        # After recovery the file is newline-terminated again: a third
        # open sees one ordinary corrupt line, not a fresh torn tail.
        path = tmp_path / "s.jsonl"
        key, result = em_reference()
        ResultStore(path).put_em(key, result)
        with open(path, "ab") as fh:
            fh.write(b'{"half":')
        ResultStore(path)  # quarantines
        third = ResultStore(path)
        assert third.stats.quarantined == 0
        assert third.stats.corrupt == 1
        assert third.count("em") == 1

    def test_complete_record_missing_only_its_newline_is_adopted(self, tmp_path):
        path = tmp_path / "s.jsonl"
        key, result = em_reference()
        ResultStore(path).put_em(key, result)
        raw = path.read_bytes()
        path.write_bytes(raw.rstrip(b"\n"))  # the crash ate just the newline
        recovered = ResultStore(path)
        assert recovered.stats.quarantined == 0
        assert recovered.count("em") == 1
        assert recovered.get_em(key) == result

    def test_live_writers_tail_is_left_alone(self, tmp_path):
        # Only the *initial* refresh quarantines: later unterminated
        # bytes may be a concurrent writer mid-line.
        path = tmp_path / "s.jsonl"
        store = ResultStore(path)
        key, result = em_reference()
        store.put_em(key, result)
        with open(path, "ab") as fh:
            fh.write(b'{"partial":')
        before = path.read_bytes()
        assert store.refresh() == 0
        assert path.read_bytes() == before
        assert store.stats.quarantined == 0


class TestWriteRetries:
    def test_torn_and_transient_failures_are_retried(self, tmp_path):
        # Attempt 1 dies at the I/O site before the append site is even
        # consulted; attempt 2 is the append site's first hit and tears.
        plan = FaultPlan(
            specs=(
                FaultSpec(SITE_STORE_IO, KIND_IO_ERROR),
                FaultSpec(SITE_STORE_APPEND, KIND_TORN_WRITE),
            )
        )
        path = tmp_path / "s.jsonl"
        key, result = em_reference()
        store = ResultStore(path, retry=QUICK)
        with injected_faults(plan):
            assert store.put_em(key, result)
        assert store.stats.write_retries == 2
        # The surviving file replays cleanly: the torn half-line is one
        # corrupt record, the retried record is whole.
        reopened = ResultStore(path)
        assert reopened.get_em(key) == result
        assert reopened.count("em") == 1
        assert reopened.stats.corrupt == 1

    def test_spent_budget_propagates_the_io_error(self, tmp_path):
        plan = FaultPlan(
            specs=(FaultSpec(SITE_STORE_IO, KIND_IO_ERROR, times=99),)
        )
        store = ResultStore(tmp_path / "s.jsonl", retry=QUICK)
        key, result = em_reference()
        with injected_faults(plan):
            with pytest.raises(OSError):
                store.put_em(key, result)

    def test_fsync_knob_is_validated(self, tmp_path):
        with pytest.raises(ValueError, match="fsync"):
            ResultStore(tmp_path / "s.jsonl", fsync="sometimes")

    def test_fsync_always_round_trips(self, tmp_path):
        path = tmp_path / "s.jsonl"
        key, result = em_reference()
        ResultStore(path, fsync="always").put_em(key, result)
        assert ResultStore(path, fsync="always").get_em(key) == result


class TestCompaction:
    def test_drops_corrupt_foreign_and_duplicate_lines(self, tmp_path):
        path = tmp_path / "s.jsonl"
        key, result = em_reference()
        store = ResultStore(path)
        store.put_em(key, result)
        live = path.read_bytes()
        foreign = json.dumps(
            {
                "schema": STORE_SCHEMA_VERSION + 1,
                "kind": "em",
                "key": "old",
                "payload": {},
            }
        ).encode()
        with open(path, "ab") as fh:
            fh.write(b"not json at all\n")
            fh.write(foreign + b"\n")
            fh.write(live)  # a byte-identical duplicate record
        report = store.compact()
        assert report.kept == 1
        assert report.dropped_corrupt == 1
        assert report.dropped_foreign == 1
        assert report.dropped_duplicates == 1
        assert report.reclaimed > 0
        assert report.bytes_after == os.path.getsize(path)
        # The rewritten file replays with zero noise.
        clean = ResultStore(path)
        assert clean.get_em(key) == result
        assert (clean.stats.corrupt, clean.stats.invalidated) == (0, 0)

    def test_keeps_quarantine_out_of_the_rewrite(self, tmp_path):
        path = tmp_path / "s.jsonl"
        key, result = em_reference()
        ResultStore(path).put_em(key, result)
        with open(path, "ab") as fh:
            fh.write(b'{"torn":')
        recovered = ResultStore(path)
        report = recovered.compact()
        assert report.dropped_corrupt == 1
        assert ResultStore(path).stats.corrupt == 0

    def test_leaves_no_temp_file_behind(self, tmp_path):
        path = tmp_path / "s.jsonl"
        store = ResultStore(path)
        key, result = em_reference()
        store.put_em(key, result)
        store.compact()
        assert not os.path.exists(str(path) + ".compact.tmp")

    def test_missing_file_is_an_empty_report(self, tmp_path):
        report = ResultStore(tmp_path / "absent.jsonl").compact()
        assert report.kept == 0 and report.dropped == 0 and report.reclaimed == 0

    def test_store_survives_compaction_mid_session(self, tmp_path):
        # Appends after a compaction land after the rewritten payload:
        # the offset moved with the rename, so nothing is re-read twice.
        path = tmp_path / "s.jsonl"
        store = ResultStore(path)
        key, result = em_reference()
        store.put_em(key, result)
        store.compact()
        assert store.refresh() == 0
        assert store.get_em(key) == result
