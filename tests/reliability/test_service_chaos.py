"""Serve/submit cycles under seeded fault plans (service-layer chaos).

Servers here run the in-process thread executor (``processes=0``), so
the armed injector's counters are visible to both the decision point
(the event loop) and the performing thread — the same parent-decides
model the pooled dispatch uses.
"""

import asyncio
import socket
import threading

import pytest

from repro.reliability import (
    KIND_HANG,
    SITE_EVALUATION,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    injected_faults,
)
from repro.service import CampaignServer, ResultStore, ServiceClient, SubmitRequest
from repro.service.client import ServiceConnectionError, cell_results

SIZE_MB = 600.0
ITERS = 60

REQUEST = dict(
    workloads=("short-read",),
    platforms=("emil",),
    method="SAM",
    size_mb=SIZE_MB,
    iterations=ITERS,
)

EVAL_RETRY = RetryPolicy(max_attempts=3, backoff_s=0.01, max_backoff_s=0.05)


def serve(coro_fn, tmp_path, **server_kwargs):
    """Run ``coro_fn(server)`` against a started server; return its result."""

    async def main():
        store = ResultStore(tmp_path / "store.jsonl")
        server = await CampaignServer(store, port=0, **server_kwargs).start()
        try:
            return await coro_fn(server)
        finally:
            await server.stop()

    return asyncio.run(main())


async def submit_once(server, **overrides):
    async with ServiceClient(port=server.port) as client:
        return await client.submit(SubmitRequest(**{**REQUEST, **overrides}))


def done_payload(events):
    (cell,) = cell_results(events)
    assert cell["status"] == "done", cell
    return cell["payload"]


class TestServiceBitIdentity:
    def test_adversarial_cycle_serves_identical_bytes(self, tmp_path):
        async def scenario(server):
            return await submit_once(server)

        clean_dir, chaos_dir = tmp_path / "clean", tmp_path / "chaos"
        clean_dir.mkdir()
        chaos_dir.mkdir()
        baseline = serve(scenario, clean_dir)

        plan = FaultPlan.adversarial_service(seed=4, hang_s=2.5)
        with injected_faults(plan):
            chaotic = serve(
                scenario,
                chaos_dir,
                eval_deadline_s=1.0,
                retry=EVAL_RETRY,
            )
        assert done_payload(chaotic) == done_payload(baseline)

    def test_retry_counters_surface_in_stats(self, tmp_path):
        async def scenario(server):
            events = await submit_once(server)
            return events, server.stats, server.store.stats, server.stats_payload()

        plan = FaultPlan.adversarial_service(seed=4, hang_s=2.5)
        with injected_faults(plan):
            events, stats, store_stats, payload = serve(
                scenario, tmp_path, eval_deadline_s=1.0, retry=EVAL_RETRY
            )
        assert done_payload(events)  # the cell still completed
        assert stats.eval_retries >= 2  # one crash + one deadline overrun
        assert stats.eval_timeouts >= 1
        assert store_stats.write_retries >= 1  # torn/transient store faults
        assert payload["reliability"]["attempts"] >= 0  # ledger is wired through
        assert payload["server"]["eval_retries"] == stats.eval_retries
        assert payload["server"]["eval_deadline_s"] == 1.0


class TestEvaluationFailure:
    def test_spent_budget_is_a_structured_error_event(self, tmp_path, monkeypatch):
        def doomed(args):
            raise RuntimeError("substrate on fire")

        from repro.service import server as server_mod

        monkeypatch.setattr(server_mod, "_run_eval_job", doomed)

        async def scenario(server):
            return await submit_once(server)

        events = serve(
            scenario,
            tmp_path,
            retry=RetryPolicy(max_attempts=2, backoff_s=0.0, jitter=0.0),
        )
        (cell,) = cell_results(events)
        assert cell["status"] == "error"
        assert "substrate on fire" in cell["error"]
        assert cell["retry_after"] > 0
        assert events[-1]["event"] == "done"

    def test_deadline_overruns_report_the_deadline(self, tmp_path):
        plan = FaultPlan(
            specs=(
                FaultSpec(SITE_EVALUATION, KIND_HANG, times=99, duration_s=2.5),
            )
        )

        async def scenario(server):
            return await submit_once(server)

        with injected_faults(plan):
            events = serve(
                scenario,
                tmp_path,
                eval_deadline_s=0.3,
                retry=RetryPolicy(max_attempts=2, backoff_s=0.0, jitter=0.0),
            )
        (cell,) = cell_results(events)
        assert cell["status"] == "error"
        assert "deadline" in cell["error"]

    def test_coalesced_follower_sees_the_leaders_failure(self, tmp_path, monkeypatch):
        """A follower awaiting a doomed leader gets an error event, not a hang."""
        follower_joined = threading.Event()
        from repro.service import server as server_mod

        def doomed(args):
            # Hold the leader until the follower has visibly coalesced,
            # then fail every attempt.
            follower_joined.wait(timeout=10)
            raise RuntimeError("leader died mid-cell")

        monkeypatch.setattr(server_mod, "_run_eval_job", doomed)

        async def scenario(server):
            leader = asyncio.create_task(submit_once(server))
            while not server._in_flight:
                await asyncio.sleep(0.01)
            follower = asyncio.create_task(submit_once(server))
            while server.stats.coalesced == 0:
                await asyncio.sleep(0.01)
            follower_joined.set()
            return await asyncio.gather(leader, follower)

        leader_events, follower_events = serve(
            scenario,
            tmp_path,
            retry=RetryPolicy(max_attempts=2, backoff_s=0.0, jitter=0.0),
        )
        for events in (leader_events, follower_events):
            (cell,) = cell_results(events)
            assert cell["status"] == "error"
            assert "leader died mid-cell" in cell["error"]
            assert cell["retry_after"] > 0


class TestConnectRetry:
    def _dead_port(self):
        with socket.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            return sock.getsockname()[1]

    def test_unreachable_server_names_host_port_and_attempts(self):
        port = self._dead_port()
        client = ServiceClient(
            "127.0.0.1", port, retry=RetryPolicy(max_attempts=2, backoff_s=0.0)
        )
        with pytest.raises(ServiceConnectionError) as err:
            asyncio.run(client.connect())
        message = str(err.value)
        assert f"127.0.0.1:{port}" in message
        assert "2 attempt(s)" in message

    def test_connection_error_except_clauses_still_catch_it(self):
        assert issubclass(ServiceConnectionError, ConnectionError)

    def test_retry_bridges_a_server_that_comes_up_late(self, tmp_path):
        async def main():
            with socket.socket() as probe:
                probe.bind(("127.0.0.1", 0))
                port = probe.getsockname()[1]
            store = ResultStore(tmp_path / "store.jsonl")
            server = CampaignServer(store, port=port)
            started = asyncio.create_task(self._start_later(server))
            client = ServiceClient(
                "127.0.0.1",
                port,
                retry=RetryPolicy(max_attempts=8, backoff_s=0.05, jitter=0.0),
            )
            try:
                async with client:
                    return await client.stats()
            finally:
                await started
                await server.stop()

        payload = asyncio.run(main())
        assert "server" in payload

    @staticmethod
    async def _start_later(server):
        await asyncio.sleep(0.15)
        await server.start()
