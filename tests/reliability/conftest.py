"""Chaos tests run with faults disarmed and clean reliability ledgers."""

import pytest

from repro.core import campaign
from repro.reliability import disarm_faults, reset_reliability_stats


@pytest.fixture(autouse=True)
def clean_reliability_state():
    """Isolate each test: no armed plan, zeroed ledgers, fresh caches."""
    disarm_faults()
    reset_reliability_stats()
    campaign.clear_em_cache()
    previous = campaign.set_result_store(None)
    yield
    campaign.set_result_store(previous)
    campaign.clear_em_cache()
    reset_reliability_stats()
    disarm_faults()
