"""Retry policies, deterministic backoff, and the ledger (reliability/retry.py)."""

import pytest

from repro.reliability import (
    DEFAULT_RETRY_POLICY,
    DegradationEvent,
    RetryPolicy,
    RetryStats,
    call_with_retry,
    reliability_stats,
    reset_reliability_stats,
)


class TestRetryPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(max_attempts=0),
            dict(timeout_s=0.0),
            dict(timeout_s=-1.0),
            dict(backoff_s=-0.1),
            dict(multiplier=0.5),
            dict(jitter=-0.1),
            dict(jitter=1.0),
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_defaults_are_sane(self):
        assert DEFAULT_RETRY_POLICY.max_attempts == 3
        assert DEFAULT_RETRY_POLICY.timeout_s is None  # no default deadline


class TestDeterministicBackoff:
    def test_same_inputs_same_wait(self):
        policy = RetryPolicy(seed=7)
        for attempt in range(4):
            assert policy.backoff(attempt, key=3) == policy.backoff(attempt, key=3)

    def test_jitter_stays_within_the_band(self):
        policy = RetryPolicy(backoff_s=0.1, multiplier=2.0, max_backoff_s=1.0, jitter=0.25)
        for attempt in range(6):
            base = min(0.1 * 2.0**attempt, 1.0)
            for key in range(8):
                wait = policy.backoff(attempt, key)
                assert base * 0.75 <= wait <= base * 1.25

    def test_zero_jitter_is_exact_exponential(self):
        policy = RetryPolicy(backoff_s=0.1, multiplier=2.0, max_backoff_s=0.5, jitter=0.0)
        assert [policy.backoff(a) for a in range(4)] == [0.1, 0.2, 0.4, 0.5]

    def test_keys_desynchronize_concurrent_loops(self):
        policy = RetryPolicy()
        waits = {policy.backoff(0, key) for key in range(16)}
        assert len(waits) == 16

    def test_seed_moves_the_schedule(self):
        assert RetryPolicy(seed=1).backoff(0) != RetryPolicy(seed=2).backoff(0)


class TestCallWithRetry:
    def test_succeeds_after_transient_failures(self):
        calls = []
        delays = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("transient")
            return "ok"

        stats = RetryStats()
        policy = RetryPolicy(max_attempts=3, backoff_s=0.05)
        out = call_with_retry(
            flaky, policy=policy, key=9, stats=stats, sleep=delays.append
        )
        assert out == "ok"
        assert (stats.attempts, stats.crashes, stats.retries) == (3, 2, 2)
        assert delays == [policy.backoff(0, 9), policy.backoff(1, 9)]

    def test_exhausted_budget_reraises_the_last_error(self):
        stats = RetryStats()

        def always():
            raise OSError("still down")

        with pytest.raises(OSError, match="still down"):
            call_with_retry(
                always,
                policy=RetryPolicy(max_attempts=3, backoff_s=0.0),
                stats=stats,
                sleep=lambda _: None,
            )
        assert (stats.attempts, stats.crashes) == (3, 3)

    def test_non_transient_errors_propagate_immediately(self):
        stats = RetryStats()

        def typed():
            raise TypeError("a bug, not weather")

        with pytest.raises(TypeError):
            call_with_retry(typed, retry_on=(OSError,), stats=stats)
        assert (stats.attempts, stats.retries) == (1, 0)


class TestRetryStats:
    def test_merge_and_clean(self):
        a, b = RetryStats(), RetryStats()
        b.attempts, b.retries, b.timeouts = 4, 1, 1
        b.record(DegradationEvent("pool.task", "pool-rebuild", "task 2"))
        assert a.clean and not b.clean
        a.merge(b)
        assert (a.attempts, a.retries, a.timeouts) == (4, 1, 1)
        assert a.events == b.events and not a.clean

    def test_as_dict_spells_out_events(self):
        stats = RetryStats()
        stats.record(DegradationEvent("store.io", "serial-fallback", "why"))
        payload = stats.as_dict()
        assert payload["events"] == [
            {"site": "store.io", "reason": "serial-fallback", "detail": "why"}
        ]

    def test_process_wide_ledger_resets(self):
        reliability_stats().attempts += 5
        assert reliability_stats().attempts == 5
        reset_reliability_stats()
        assert reliability_stats().attempts == 0
