"""Fault-tolerant pooled dispatch (core/pool.py) under seeded adversaries.

The pooled chaos tests pin ``start_method="fork"`` deliberately: these
test modules are not importable by spawned children (pytest loads them
outside any package), and ``fork`` inherits them by memory.  The
dispatch layer itself is start-method independent — pinned by the
campaign start-method regression tests.
"""

import multiprocessing

import pytest

from repro.core import pool as pool_mod
from repro.core.pool import pool_context, run_tasks
from repro.reliability import (
    FaultPlan,
    RetryPolicy,
    injected_faults,
    reliability_stats,
)

FAST = RetryPolicy(max_attempts=3, backoff_s=0.01, max_backoff_s=0.05)
POOLED = RetryPolicy(max_attempts=3, timeout_s=1.0, backoff_s=0.01, max_backoff_s=0.05)

fork_only = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="pooled chaos tests inherit test-module workers via fork",
)


def _double(job):
    return job * 2


def _explode(job):
    raise ValueError(f"deterministic bug for {job!r}")


class TestSerialDispatch:
    def test_fault_free_batch(self):
        results, stats = run_tasks(_double, range(6))
        assert results == [0, 2, 4, 6, 8, 10]
        assert stats.clean and stats.attempts == 6

    def test_recovers_from_the_adversary(self):
        plan = FaultPlan.adversarial(seed=3, tasks=5, hang_s=0.02)
        with injected_faults(plan):
            results, stats = run_tasks(_double, range(5), policy=FAST)
        assert results == [0, 2, 4, 6, 8]
        assert stats.crashes >= 1 and stats.retries >= 1

    def test_genuine_errors_still_propagate(self):
        # The final serial rung runs fault-free, so a deterministic bug
        # in the worker surfaces instead of being eaten by the ladder.
        with pytest.raises(ValueError, match="deterministic bug"):
            run_tasks(_explode, [42], policy=FAST)

    def test_ledger_merges_into_the_process_aggregate(self):
        _, stats = run_tasks(_double, range(3))
        assert reliability_stats().attempts >= stats.attempts


@fork_only
class TestPooledChaos:
    def test_bit_identity_under_the_adversary(self):
        baseline, clean = run_tasks(_double, range(6))
        assert clean.clean
        plan = FaultPlan.adversarial(seed=7, tasks=6, hang_s=2.5)
        with injected_faults(plan):
            chaotic, stats = run_tasks(
                _double, range(6), processes=3, start_method="fork", policy=POOLED
            )
        assert chaotic == baseline  # the headline invariant
        assert not stats.clean  # ...but the ladder was climbed
        assert stats.crashes + stats.timeouts >= 1

    def test_hang_triggers_rebuild_then_completion(self):
        plan = FaultPlan.adversarial(seed=11, tasks=4, hang_s=2.5)
        with injected_faults(plan):
            results, stats = run_tasks(
                _double, range(4), processes=2, start_method="fork", policy=POOLED
            )
        assert results == [0, 2, 4, 6]
        assert stats.timeouts >= 1
        assert stats.pool_rebuilds >= 1
        assert any(e.reason == "pool-rebuild" for e in stats.events)


class TestDegradedDispatch:
    def test_pool_unavailable_falls_back_to_serial(self, monkeypatch):
        class BrokenContext:
            def Pool(self, size):
                raise OSError("no worker processes on this box")

        monkeypatch.setattr(
            pool_mod, "pool_context", lambda prefer=None: BrokenContext()
        )
        results, stats = run_tasks(_double, range(4), processes=2, policy=FAST)
        assert results == [0, 2, 4, 6]
        assert stats.degradations >= 1
        assert any(e.reason == "pool-unavailable" for e in stats.events)


class TestStartMethodFallback:
    @pytest.mark.skipif(
        "forkserver" not in multiprocessing.get_all_start_methods()
        or "spawn" not in multiprocessing.get_all_start_methods(),
        reason="needs two candidate start methods to fall between",
    )
    def test_broken_preferred_method_is_skipped(self, monkeypatch):
        real = multiprocessing.get_context

        def hardened(method=None):
            if method == "forkserver":
                raise OSError("forkserver disabled by the container")
            return real(method) if method is not None else real()

        monkeypatch.setattr(pool_mod.multiprocessing, "get_context", hardened)
        assert pool_context().get_start_method() == "spawn"

    def test_explicitly_requested_broken_method_still_raises(self, monkeypatch):
        # prefer= is a pin, not a preference: the caller asked for it.
        with pytest.raises(ValueError, match="not available"):
            pool_context("no-such-method")
