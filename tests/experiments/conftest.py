"""Shared experiment context: built once per test session (~10 s)."""

import pytest

from repro.experiments import default_context


@pytest.fixture(scope="session")
def ctx():
    return default_context(0)
