"""Plain-text table/series/histogram rendering."""

import pytest

from repro.experiments import render_histogram, render_series, render_table


class TestRenderTable:
    def test_basic_layout(self):
        out = render_table(["a", "bb"], [(1, 2.5), (30, 4.0)])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "30" in lines[-1]
        assert "2.500" in out  # default float format

    def test_title(self):
        out = render_table(["x"], [(1,)], title="My Table")
        assert out.splitlines()[0] == "My Table"
        assert out.splitlines()[1] == "=" * len("My Table")

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError, match="cells"):
            render_table(["a", "b"], [(1,)])

    def test_columns_aligned(self):
        out = render_table(["col", "x"], [("a", 1), ("longer", 2)])
        rows = out.splitlines()
        pipes = [r.index("|") for r in rows if "|" in r]
        assert len(set(pipes)) == 1


class TestRenderSeries:
    def test_one_column_per_series(self):
        out = render_series([1, 2], {"s1": [0.1, 0.2], "s2": [0.3, 0.4]}, x_label="it")
        header = out.splitlines()[0]
        assert "it" in header and "s1" in header and "s2" in header

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError, match="length"):
            render_series([1, 2], {"s": [0.1]})


class TestRenderHistogram:
    def test_bars_scale_with_counts(self):
        out = render_histogram(["a", "b"], [10, 5])
        lines = out.splitlines()
        assert lines[0].count("#") == 2 * lines[1].count("#")

    def test_zero_counts(self):
        out = render_histogram(["a"], [0])
        assert "#" not in out

    def test_rejects_misaligned(self):
        with pytest.raises(ValueError, match="align"):
            render_histogram(["a"], [1, 2])
