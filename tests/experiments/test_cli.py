"""CLI experiment runner."""

import pytest

from repro.cli import ARTIFACTS, main


class TestCLI:
    def test_table2_prints_method_matrix(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "SAML" in out
        assert "Simulated Annealing" in out

    def test_fig2_prints_three_sweeps(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "fig2a" in out and "fig2b" in out and "fig2c" in out
        assert "CPU only" in out

    def test_table4_prints_accuracy(self, capsys):
        assert main(["table4"]) == 0
        out = capsys.readouterr().out
        assert "Table IV" in out
        assert "percent [%]" in out

    def test_table1_prints_parameter_space(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Workload Fraction" in out
        assert "scatter" in out

    def test_table3_prints_hardware(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "E5-2695v2" in out and "7120P" in out
        assert "244" in out

    def test_unknown_artifact_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure42"])

    def test_artifact_list_is_complete(self):
        for must in ("fig2", "fig9", "table6", "table9", "summary", "tune", "all"):
            assert must in ARTIFACTS


class TestEngineFlags:
    """End-to-end coverage of the --engine/--batch-size flags."""

    def test_unknown_engine_name_is_an_error(self, capsys):
        assert main(["tune", "--engine", "warp-drive"]) == 2
        err = capsys.readouterr().err
        assert "unknown engine" in err
        assert "warp-drive" in err

    def test_tune_with_batched_engine_end_to_end(self, capsys):
        code = main([
            "tune", "--method", "SAML", "--iterations", "60",
            "--engine", "batched", "--batch-size", "32",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "SAML suggestion" in out
        assert "configuration" in out and "measured time" in out
        assert "engine" in out and "batches=" in out

    def test_tune_with_cached_engine_reports_hits(self, capsys):
        code = main([
            "tune", "--method", "SAML", "--iterations", "200", "--engine", "cached",
        ])
        assert code == 0
        assert "cache hits=" in capsys.readouterr().out

    def test_tune_engine_choice_does_not_change_result(self, capsys):
        args = ["tune", "--method", "SAM", "--iterations", "80"]
        assert main(args) == 0
        plain = capsys.readouterr().out
        assert main([*args, "--engine", "cached+batched"]) == 0
        cached = capsys.readouterr().out
        line = next(l for l in plain.splitlines() if "configuration" in l)
        assert line in cached

    def test_tune_unknown_method_is_an_error(self, capsys):
        assert main(["tune", "--method", "GA"]) == 2
        assert "unknown method" in capsys.readouterr().err

    def test_batched_engine_flag_accepted_for_studies(self):
        """--engine parses for study artifacts too (cheap artifact here)."""
        assert main(["table2", "--engine", "batched"]) == 0
