"""CLI experiment runner."""

import pytest

from repro.cli import ARTIFACTS, main


class TestCLI:
    def test_table2_prints_method_matrix(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "SAML" in out
        assert "Simulated Annealing" in out

    def test_fig2_prints_three_sweeps(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "fig2a" in out and "fig2b" in out and "fig2c" in out
        assert "CPU only" in out

    def test_table4_prints_accuracy(self, capsys):
        assert main(["table4"]) == 0
        out = capsys.readouterr().out
        assert "Table IV" in out
        assert "percent [%]" in out

    def test_table1_prints_parameter_space(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Workload Fraction" in out
        assert "scatter" in out

    def test_table3_prints_hardware(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "E5-2695v2" in out and "7120P" in out
        assert "244" in out

    def test_unknown_artifact_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure42"])

    def test_artifact_list_is_complete(self):
        for must in ("fig2", "fig9", "table6", "table9", "summary", "all"):
            assert must in ARTIFACTS
