"""CLI experiment runner."""

import pytest

from repro.cli import ARTIFACTS, main


class TestCLI:
    def test_table2_prints_method_matrix(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "SAML" in out
        assert "Simulated Annealing" in out

    def test_fig2_prints_three_sweeps(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "fig2a" in out and "fig2b" in out and "fig2c" in out
        assert "CPU only" in out

    def test_table4_prints_accuracy(self, capsys):
        assert main(["table4"]) == 0
        out = capsys.readouterr().out
        assert "Table IV" in out
        assert "percent [%]" in out

    def test_table1_prints_parameter_space(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Workload Fraction" in out
        assert "scatter" in out

    def test_table3_prints_hardware(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "E5-2695v2" in out and "7120P" in out
        assert "244" in out

    def test_unknown_artifact_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure42"])

    def test_artifact_list_is_complete(self):
        for must in ("fig2", "fig9", "table6", "table9", "summary", "tune", "all"):
            assert must in ARTIFACTS


class TestEngineFlags:
    """End-to-end coverage of the --engine/--batch-size flags."""

    def test_unknown_engine_name_is_an_error(self, capsys):
        assert main(["tune", "--engine", "warp-drive"]) == 2
        err = capsys.readouterr().err
        assert "unknown engine" in err
        assert "warp-drive" in err

    def test_tune_with_batched_engine_end_to_end(self, capsys):
        code = main([
            "tune", "--method", "SAML", "--iterations", "60",
            "--engine", "batched", "--batch-size", "32",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "SAML suggestion" in out
        assert "configuration" in out and "measured time" in out
        assert "engine" in out and "batches=" in out

    def test_tune_with_cached_engine_reports_hits(self, capsys):
        code = main([
            "tune", "--method", "SAML", "--iterations", "200", "--engine", "cached",
        ])
        assert code == 0
        assert "cache hits=" in capsys.readouterr().out

    def test_tune_engine_choice_does_not_change_result(self, capsys):
        args = ["tune", "--method", "SAM", "--iterations", "80"]
        assert main(args) == 0
        plain = capsys.readouterr().out
        assert main([*args, "--engine", "cached+batched"]) == 0
        cached = capsys.readouterr().out
        line = next(ln for ln in plain.splitlines() if "configuration" in ln)
        assert line in cached

    def test_tune_unknown_method_is_an_error(self, capsys):
        assert main(["tune", "--method", "GA"]) == 2
        assert "unknown method" in capsys.readouterr().err

    def test_batched_engine_flag_accepted_for_studies(self):
        """--engine parses for study artifacts too (cheap artifact here)."""
        assert main(["table2", "--engine", "batched"]) == 0


class TestPlatformFlags:
    """End-to-end coverage of --platform and the campaign/platforms artifacts."""

    def test_platforms_artifact_lists_the_registry(self, capsys):
        assert main(["platforms"]) == 0
        out = capsys.readouterr().out
        for name in ("Emil", "FatHost", "DualPhi", "ManyCore", "SlowLink"):
            assert name in out

    def test_unknown_platform_is_an_error(self, capsys):
        assert main(["tune", "--platform", "cray-1"]) == 2
        err = capsys.readouterr().err
        assert "unknown platform" in err
        assert "emil" in err

    def test_tune_on_a_named_platform(self, capsys):
        code = main([
            "tune", "--method", "SAM", "--iterations", "60",
            "--platform", "fathost",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "on FatHost" in out
        assert "configuration" in out

    def test_tune_default_platform_matches_explicit_emil(self, capsys):
        args = ["tune", "--method", "SAM", "--iterations", "60"]
        assert main(args) == 0
        default = capsys.readouterr().out
        assert main([*args, "--platform", "emil"]) == 0
        explicit = capsys.readouterr().out
        assert default == explicit
        assert "on Emil" in default

    def test_tune_ml_method_rejected_on_deviceless_platform(self, capsys):
        code = main([
            "tune", "--method", "SAML", "--platform", "manycore",
            "--iterations", "40",
        ])
        assert code == 2
        assert "no accelerator" in capsys.readouterr().err

    def test_campaign_covers_the_fleet(self, capsys):
        code = main(["campaign", "--iterations", "80", "--size-mb", "500"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Campaign: SAM" in out
        for name in ("Emil", "FatHost", "DualPhi", "ManyCore", "SlowLink"):
            assert name in out
        assert "fastest platform" in out

    def test_campaign_platform_subset(self, capsys):
        code = main([
            "campaign", "--platforms", "emil,slowlink",
            "--iterations", "60", "--size-mb", "500",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Emil" in out and "SlowLink" in out
        assert "FatHost" not in out

    def test_campaign_unknown_platform_is_an_error(self, capsys):
        code = main(["campaign", "--platforms", "emil,nope"])
        assert code == 2
        assert "unknown platform" in capsys.readouterr().err

    def test_table3_follows_the_platform(self, capsys):
        assert main(["table3", "--platform", "dualphi"]) == 0
        out = capsys.readouterr().out
        assert "DualPhi" in out
        assert "7290" in out

    def test_campaign_honors_platform_flag(self, capsys):
        code = main([
            "campaign", "--platform", "fathost",
            "--iterations", "60", "--size-mb", "500",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "FatHost" in out
        assert "Emil" not in out
        assert "across 1 platforms" in out


class TestWorkloadFlags:
    """End-to-end coverage of --workload and the workloads/matrix artifacts."""

    def test_workloads_artifact_lists_the_registry(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in (
            "dna-paper", "short-read", "long-genome",
            "dense-motif", "tiny-alphabet", "protein-alphabet",
        ):
            assert name in out

    def test_unknown_workload_is_an_error(self, capsys):
        assert main(["tune", "--workload", "weather-sim"]) == 2
        err = capsys.readouterr().err
        assert "unknown workload" in err
        assert "dna-paper" in err

    def test_tune_on_a_named_workload_uses_its_scale(self, capsys):
        code = main([
            "tune", "--method", "SAM", "--iterations", "60",
            "--workload", "short-read",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "300 MB short-read workload" in out

    def test_tune_default_workload_matches_explicit_dna_paper(self, capsys):
        args = ["tune", "--method", "SAM", "--iterations", "60"]
        assert main(args) == 0
        default = capsys.readouterr().out
        assert main([*args, "--workload", "dna-paper"]) == 0
        explicit = capsys.readouterr().out
        assert default == explicit
        assert "dna-paper workload on Emil" in default

    def test_campaign_honors_workload_flag(self, capsys):
        code = main([
            "campaign", "--workload", "dense-motif", "--platforms", "emil",
            "--iterations", "60",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "dense-motif workload" in out

    def test_matrix_small_budget_scale(self, capsys):
        code = main([
            "matrix", "--budget-scale", "small", "--iterations", "80",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Scenario matrix: SAM across 3 workloads x 3 platforms" in out
        for name in ("dna-paper", "short-read", "dense-motif"):
            assert name in out
        for name in ("Emil", "FatHost", "SlowLink"):
            assert name in out
        assert "best cell" in out

    def test_matrix_explicit_subsets(self, capsys):
        code = main([
            "matrix", "--workloads", "short-read,long-genome",
            "--platforms", "emil,slowlink", "--iterations", "60",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "across 2 workloads x 2 platforms" in out
        assert "long-genome" in out and "FatHost" not in out

    def test_matrix_unknown_workload_is_an_error(self, capsys):
        code = main(["matrix", "--workloads", "nope", "--platforms", "emil"])
        assert code == 2
        assert "unknown workload" in capsys.readouterr().err


class TestPortfolioFlags:
    """The portfolio artifact and the --portfolio/--transfer/--store flags."""

    def test_portfolio_artifact_prints_the_rung_ledger(self, capsys):
        code = main([
            "portfolio", "--workload", "short-read", "--iterations", "60",
            "--portfolio", "sh:15x2:SAM+RS+HC",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Portfolio race sh:15x2:SAM+RS+HC" in out
        assert "won in" in out
        assert "spend per entrant" in out
        assert "timed experiments" in out

    def test_portfolio_artifact_defaults_to_the_full_catalogue(self, capsys):
        # Bare `--portfolio` (no spec) and the portfolio artifact both
        # fall back to the default successive-halving schedule.
        code = main([
            "portfolio", "--workload", "short-read", "--iterations", "60",
            "--transfer",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Portfolio race sh:125x2" in out
        assert "transfer:" in out

    def test_unparseable_portfolio_spec_is_an_error(self, capsys):
        assert main(["matrix", "--portfolio", "hyperband:3"]) == 2
        assert "portfolio" in capsys.readouterr().err

    def test_matrix_with_portfolio_reuses_stored_models(self, capsys, tmp_path):
        from repro.ml.transfer import clear_transfer_cache

        store = str(tmp_path / "store.jsonl")
        args = [
            "matrix", "--workloads", "short-read", "--platforms", "emil",
            "--iterations", "60", "--portfolio", "sh:15x2:SAM+SAML+RS",
            "--transfer", "--store", store,
        ]
        clear_transfer_cache()  # process-wide counters: start from zero
        try:
            assert main(args) == 0
            first = capsys.readouterr().out
            assert "portfolio short-read@Emil:" in first
            # Warm-started training: the donor chain is dna-paper cold
            # plus this cell warm, both measured fresh.
            assert "1 cold fits, 1 warm fits" in first
            assert "2 grids measured" in first
            # A fresh process against the same store trains nothing.
            clear_transfer_cache()
            assert main(args) == 0
            second = capsys.readouterr().out
            assert "0 cold fits, 0 warm fits" in second
            assert "2 model store hits" in second
            assert "0 grids measured" in second
        finally:
            clear_transfer_cache()
