"""Figure 2: the motivational sweeps reproduce the paper's crossovers."""

import numpy as np
import pytest

from repro.experiments import (
    RATIO_GRID,
    RATIO_LABELS,
    SCENARIOS,
    normalize_1_10,
    run_fig2,
    run_scenario,
)
from repro.machines import PlatformSimulator


@pytest.fixture(scope="module")
def results():
    return run_fig2(PlatformSimulator(seed=0))


class TestSweepStructure:
    def test_eleven_ratio_points(self):
        assert len(RATIO_GRID) == 11
        assert len(RATIO_LABELS) == 11
        assert RATIO_GRID[0] == 100.0 and RATIO_GRID[-1] == 0.0

    def test_three_scenarios(self):
        assert [s.name for s in SCENARIOS] == ["fig2a", "fig2b", "fig2c"]

    def test_all_scenarios_present(self, results):
        assert set(results) == {"fig2a", "fig2b", "fig2c"}


class TestPaperCrossovers:
    def test_fig2a_small_input_cpu_only_wins(self, results):
        assert results["fig2a"].best_label == "CPU only"

    def test_fig2b_large_input_split_wins(self, results):
        assert results["fig2b"].best_label in ("70/30", "60/40", "50/50")

    def test_fig2c_few_threads_device_heavy_split_wins(self, results):
        assert results["fig2c"].best_label in ("30/70", "20/80", "40/60")

    def test_fig2c_cpu_only_is_worst(self, results):
        res = results["fig2c"]
        assert res.normalized[0] == max(res.normalized)


class TestNormalization:
    def test_range_is_1_to_10(self, results):
        for res in results.values():
            assert min(res.normalized) == pytest.approx(1.0)
            assert max(res.normalized) == pytest.approx(10.0)

    def test_order_preserved(self, results):
        res = results["fig2b"]
        assert np.argmin(res.normalized) == np.argmin(res.seconds)

    def test_constant_input(self):
        out = normalize_1_10(np.array([2.0, 2.0]))
        assert out.tolist() == [1.0, 1.0]

    def test_scenario_runner_deterministic(self):
        sim1 = PlatformSimulator(seed=5)
        sim2 = PlatformSimulator(seed=5)
        a = run_scenario(sim1, SCENARIOS[0])
        b = run_scenario(sim2, SCENARIOS[0])
        assert a.seconds == b.seconds
