"""Fig. 9 / Tables VI-IX iteration study (reduced budgets for speed)."""

import pytest

from repro.experiments import run_iteration_study, study_genome
from repro.experiments.iterations import experiments_saved_fraction


@pytest.fixture(scope="module")
def study(ctx):
    return run_iteration_study(
        ctx, genomes=("cat", "dog"), checkpoints=(100, 400), n_seeds=2
    )


class TestGenomeStudy:
    def test_em_is_best_or_equal(self, ctx):
        g = study_genome(ctx, "dog", checkpoints=(300,), n_seeds=1)
        assert g.em_time <= g.saml_times[300] * 1.001
        assert g.em_time <= g.host_only
        assert g.em_time <= g.device_only

    def test_metrics_definitions(self, study):
        g = study.genomes["cat"]
        b = study.checkpoints[0]
        assert g.percent_difference(b) == pytest.approx(
            100.0 * abs(g.em_time - g.saml_times[b]) / g.em_time
        )
        assert g.absolute_difference(b) == pytest.approx(
            abs(g.em_time - g.saml_times[b])
        )
        assert g.speedup_vs_host(b) == pytest.approx(g.host_only / g.saml_times[b])
        assert g.speedup_vs_device(b) == pytest.approx(g.device_only / g.saml_times[b])

    def test_result5_heterogeneous_beats_both_baselines(self, study):
        """Result 5: the tuned split shares work efficiently."""
        for g in study.genomes.values():
            assert g.em_speedup_vs_host > 1.3
            assert g.em_speedup_vs_device > 1.8


class TestTables:
    def test_table6_has_average_row(self, study):
        rows = study.table6()
        assert rows[-1][0] == "average"
        assert len(rows) == len(study.genomes) + 1

    def test_table7_absolute_values_consistent_with_table6(self, study):
        t6 = study.table6()
        t7 = study.table7()
        g = study.genomes["cat"]
        # pct = 100 * abs / em for the first checkpoint.
        assert t6[0][1] == pytest.approx(100.0 * t7[0][1] / g.em_time, abs=0.15)

    def test_table8_9_include_em_column(self, study):
        for rows in (study.table8(), study.table9()):
            assert len(rows[0]) == 1 + len(study.checkpoints) + 1

    def test_fig9_series_shapes(self, study):
        series = study.fig9_series("cat")
        assert set(series) == {"SAML", "SAM", "EM", "EML"}
        for vals in series.values():
            assert len(vals) == len(study.checkpoints)
        # EM line is constant.
        assert len(set(series["EM"])) == 1

    def test_more_iterations_do_not_hurt_much(self, study):
        """Convergence shape: the 400-iteration average is no worse than
        ~the 100-iteration average (annealing is stochastic; allow 5%)."""
        import numpy as np

        a = np.mean([g.saml_times[100] for g in study.genomes.values()])
        b = np.mean([g.saml_times[400] for g in study.genomes.values()])
        assert b <= a * 1.05


class TestHeadlineClaim:
    def test_result3_five_percent_of_experiments(self, ctx):
        """1000 SA iterations ~ 5% of the 19926-experiment enumeration."""
        frac = experiments_saved_fraction(ctx, 1000)
        assert frac == pytest.approx(1000 / 19926)
        assert 0.04 < frac < 0.06
