"""ASCII plot renderers."""

import pytest

from repro.experiments.ascii_plot import gantt, line_plot
from repro.machines import PlatformSimulator
from repro.runtime import TaskFarmScheduler


class TestLinePlot:
    def test_renders_all_series_markers(self):
        out = line_plot([1, 2, 3], {"a": [1.0, 2.0, 3.0], "b": [3.0, 2.0, 1.0]})
        assert "o" in out and "x" in out
        assert "o=a" in out and "x=b" in out

    def test_extremes_labeled(self):
        out = line_plot([0, 10], {"s": [5.0, 25.0]})
        assert "25" in out
        assert "5" in out

    def test_constant_series_does_not_crash(self):
        out = line_plot([0, 1, 2], {"flat": [2.0, 2.0, 2.0]})
        assert "o" in out

    def test_title_first_line(self):
        out = line_plot([0, 1], {"s": [0.0, 1.0]}, title="My Plot")
        assert out.splitlines()[0] == "My Plot"

    def test_monotone_series_slopes_correctly(self):
        out = line_plot([0, 1, 2, 3], {"up": [0.0, 1.0, 2.0, 3.0]}, height=8, width=24)
        rows = [ln for ln in out.splitlines() if "|" in ln and ln.rstrip().endswith("|")]
        first_marker_col = [r.index("o") for r in rows if "o" in r]
        # Higher rows (earlier lines) hold larger y -> larger x positions.
        assert first_marker_col == sorted(first_marker_col, reverse=True)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"x": [], "series": {"s": []}},
            {"x": [1], "series": {}},
            {"x": [1, 2], "series": {"s": [1.0]}},
            {"x": [1], "series": {"s": [1.0]}, "width": 4},
        ],
    )
    def test_validation(self, kwargs):
        x = kwargs.pop("x")
        series = kwargs.pop("series")
        with pytest.raises(ValueError):
            line_plot(x, series, **kwargs)


class TestGantt:
    @pytest.fixture(scope="class")
    def timeline(self):
        farm = TaskFarmScheduler(PlatformSimulator(seed=0, noise=False), seed=0)
        return farm.run(3170.0, 24).timeline

    def test_two_lanes(self, timeline):
        out = gantt(timeline)
        lines = [ln for ln in out.splitlines() if "|" in ln]
        assert len(lines) == 2
        assert any(ln.strip().startswith("host") for ln in lines)
        assert any(ln.strip().startswith("device") for ln in lines)

    def test_busy_lanes_are_dense(self, timeline):
        out = gantt(timeline, width=60)
        host_lane = next(ln for ln in out.splitlines() if ln.strip().startswith("host"))
        bar = host_lane.split("|")[1]
        # A well-balanced farm keeps the host almost always busy.
        assert bar.count(" ") < 0.2 * len(bar)

    def test_empty_timeline_rejected(self):
        with pytest.raises(ValueError):
            gantt([])
