"""Figures 5-8 and Tables IV-V: prediction-accuracy artifacts."""

import numpy as np

from repro.core.params import DEVICE_THREADS, EVAL_HOST_THREADS
from repro.experiments import (
    FIG5_THREADS,
    FIG6_THREADS,
    fig5_curves,
    fig6_curves,
    fig7_histogram,
    fig8_histogram,
    table4,
    table5,
)
from repro.ml import percent_error


class TestCurves:
    def test_fig5_one_curve_per_thread_count(self, ctx):
        curves = fig5_curves(ctx)
        assert tuple(c.threads for c in curves) == FIG5_THREADS
        assert all(c.affinity == "scatter" for c in curves)

    def test_fig6_one_curve_per_thread_count(self, ctx):
        curves = fig6_curves(ctx)
        assert tuple(c.threads for c in curves) == FIG6_THREADS
        assert all(c.affinity == "balanced" for c in curves)

    def test_series_aligned(self, ctx):
        for c in fig5_curves(ctx):
            assert len(c.sizes_mb) == len(c.measured) == len(c.predicted)

    def test_sizes_span_paper_range(self, ctx):
        sizes = fig5_curves(ctx)[0].sizes_mb
        assert sizes[0] < 120.0  # ~ the paper's 116 MB smallest point
        assert sizes[-1] > 3000.0  # ~ the 3099 MB largest point

    def test_predictions_match_measurements_result1(self, ctx):
        """Result 1: predicted times match measured times well."""
        for curves in (fig5_curves(ctx), fig6_curves(ctx)):
            for c in curves:
                pct = percent_error(np.array(c.measured), np.array(c.predicted))
                assert np.median(pct) < 10.0

    def test_more_threads_run_faster(self, ctx):
        curves = fig5_curves(ctx)
        # Compare the largest-size measured point across thread counts.
        last = [c.measured[-1] for c in curves]
        assert all(a > b for a, b in zip(last, last[1:]))


class TestHistograms:
    def test_fig7_covers_host_test_half(self, ctx):
        h = fig7_histogram(ctx)
        assert h.n_predictions == 1440  # half of 2880

    def test_fig8_covers_device_test_half(self, ctx):
        h = fig8_histogram(ctx)
        assert h.n_predictions == 2160  # half of 4320

    def test_most_host_errors_are_small(self, ctx):
        """Fig. 7's shape: the mass sits in the lowest bins."""
        h = fig7_histogram(ctx)
        low = sum(h.counts[:4])
        assert low > 0.5 * h.n_predictions


class TestAccuracyTables:
    def test_table4_covers_eval_thread_grid(self, ctx):
        assert table4(ctx).threads == EVAL_HOST_THREADS

    def test_table5_covers_device_thread_grid(self, ctx):
        assert table5(ctx).threads == DEVICE_THREADS

    def test_result2_error_bands(self, ctx):
        """Result 2: average percent errors in the paper's single-digit band
        (paper: 5.24% host, 3.13% device)."""
        assert table4(ctx).avg_percent < 8.0
        assert table5(ctx).avg_percent < 8.0

    def test_rows_render_two_metrics(self, ctx):
        rows = table4(ctx).rows()
        assert rows[0][0] == "absolute [s]"
        assert rows[1][0] == "percent [%]"
        # threads columns + label + avg
        assert len(rows[0]) == len(table4(ctx).threads) + 2
