"""Shared experiment context."""

import pytest

from repro.experiments import default_context
from repro.experiments.context import build_context


class TestContext:
    def test_default_context_is_memoized(self):
        assert default_context(0) is default_context(0)

    def test_genome_sizes_in_paper_order(self, ctx):
        sizes = ctx.genome_sizes_mb
        assert list(sizes) == ["human", "mouse", "cat", "dog"]
        assert sizes["human"] == pytest.approx(3170.0)

    def test_models_trained_on_paper_grid(self, ctx):
        assert ctx.models.data.n_experiments == 7200

    def test_ml_returns_fresh_evaluators(self, ctx):
        a, b = ctx.ml(), ctx.ml()
        assert a is not b
        assert a.host_model is b.host_model  # same trained models underneath

    def test_space_is_paper_space(self, ctx):
        assert ctx.space.size() == 19926
