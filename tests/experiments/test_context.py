"""Shared experiment context."""

import pytest

from repro.experiments import default_context, platform_context
from repro.experiments.context import build_context


class TestContext:
    def test_default_context_is_memoized(self):
        assert default_context(0) is default_context(0)

    def test_genome_sizes_in_paper_order(self, ctx):
        sizes = ctx.genome_sizes_mb
        assert list(sizes) == ["human", "mouse", "cat", "dog"]
        assert sizes["human"] == pytest.approx(3170.0)

    def test_models_trained_on_paper_grid(self, ctx):
        assert ctx.models.data.n_experiments == 7200

    def test_ml_returns_fresh_evaluators(self, ctx):
        a, b = ctx.ml(), ctx.ml()
        assert a is not b
        assert a.host_model is b.host_model  # same trained models underneath

    def test_space_is_paper_space(self, ctx):
        assert ctx.space.size() == 19926


class TestWorkloadContexts:
    @pytest.fixture(scope="class")
    def short_read_ctx(self):
        return build_context(workload="short-read", seed=0)

    def test_paper_scenario_shares_the_default_cache(self):
        assert platform_context("emil", 0, "dna-paper") is default_context(0)
        assert platform_context("emil", 0) is default_context(0)

    def test_workload_context_follows_the_scenario_space(self, short_read_ctx):
        # short-read coarsens the fraction grid: 6*3 * 9*3 * 21 values.
        assert short_read_ctx.space.size() == 6 * 3 * 9 * 3 * 21
        assert short_read_ctx.sim.workload.name == "short-read"

    def test_workload_context_rescales_training_sizes(self, short_read_ctx):
        # 4 sizes x 40 fractions x (6*3 host + 9*3 device) grid points.
        assert short_read_ctx.models.data.n_experiments == 7200
        assert max(short_read_ctx.models.data.host.y) > 0
        largest = 300.0  # short-read's sequence_mb maps onto the paper's 3170
        host_mbs = short_read_ctx.models.data.host.X[:, -1]
        assert host_mbs.max() <= largest
