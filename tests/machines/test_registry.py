"""Platform registry and performance-profile parameterization."""

import pytest

from repro.machines import (
    DEFAULT_DEVICE_PERF,
    DEFAULT_HOST_PERF,
    DUALPHI,
    EMIL,
    FATHOST,
    MANYCORE,
    SLOWLINK,
    HostPerformanceModel,
    PerfProfile,
    PlatformSimulator,
    PlatformSpec,
    all_platforms,
    get_platform,
    platform_names,
    register_platform,
)
from repro.machines.memory import DEVICE_SCAN_EFFICIENCY, HOST_SCAN_EFFICIENCY
from repro.machines.perfmodel import (
    DEVICE_HT_YIELD,
    DEVICE_SPAWN_BASE_S,
    HOST_AFFINITY_RATE,
    HOST_HT_YIELD,
    HOST_SPAWN_BASE_S,
)
from repro.machines.simulator import (
    DEVICE_NOISE_SIGMA,
    HOST_NOISE_SIGMA,
    NONE_AFFINITY_NOISE_SCALE,
)


class TestRegistry:
    def test_fleet_has_at_least_four_platforms(self):
        assert len(platform_names()) >= 4

    def test_emil_is_registered_and_default(self):
        assert get_platform("emil") is EMIL

    def test_lookup_is_case_insensitive_and_accepts_display_names(self):
        assert get_platform("FatHost") is FATHOST
        assert get_platform("FATHOST") is FATHOST
        assert get_platform("DualPhi") is DUALPHI

    def test_spec_passthrough(self):
        assert get_platform(SLOWLINK) is SLOWLINK

    def test_unknown_platform_lists_the_registry(self):
        with pytest.raises(ValueError, match="emil.*fathost"):
            get_platform("cray-1")

    def test_reregistering_same_spec_is_idempotent(self):
        assert register_platform(EMIL, key="emil") is EMIL

    def test_conflicting_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_platform(FATHOST, key="emil")

    def test_all_platforms_matches_names(self):
        assert len(all_platforms()) == len(platform_names())

    def test_fleet_covers_the_issue_scenarios(self):
        # fat host / weak device, dual accelerator, many-core no-device.
        assert FATHOST.host_hardware_threads > EMIL.host_hardware_threads
        assert FATHOST.device_perf.rate_scale < 1.0
        assert DUALPHI.num_devices == 2
        assert not MANYCORE.has_device
        assert MANYCORE.max_device_threads == 0
        assert SLOWLINK.interconnect.effective_bandwidth_gbs < (
            EMIL.interconnect.effective_bandwidth_gbs
        )


class TestPerfProfile:
    def test_default_profiles_match_emil_module_constants(self):
        # The historical module-level calibration and the spec-carried
        # profiles must agree, or EMIL results would silently drift.
        assert DEFAULT_HOST_PERF.ht_yield_table == HOST_HT_YIELD
        assert DEFAULT_DEVICE_PERF.ht_yield_table == DEVICE_HT_YIELD
        assert DEFAULT_HOST_PERF.spawn_base_s == HOST_SPAWN_BASE_S
        assert DEFAULT_DEVICE_PERF.spawn_base_s == DEVICE_SPAWN_BASE_S
        assert DEFAULT_HOST_PERF.affinity_rates == HOST_AFFINITY_RATE
        assert DEFAULT_HOST_PERF.scan_efficiency == HOST_SCAN_EFFICIENCY
        assert DEFAULT_DEVICE_PERF.scan_efficiency == DEVICE_SCAN_EFFICIENCY
        assert DEFAULT_HOST_PERF.noise_sigma == HOST_NOISE_SIGMA
        assert DEFAULT_DEVICE_PERF.noise_sigma == DEVICE_NOISE_SIGMA
        assert DEFAULT_HOST_PERF.noise_scales == {"none": NONE_AFFINITY_NOISE_SCALE}

    def test_emil_carries_the_default_profiles(self):
        assert EMIL.host_perf == DEFAULT_HOST_PERF
        assert EMIL.device_perf == DEFAULT_DEVICE_PERF

    def test_rate_scale_speeds_up_the_model(self):
        fast = PlatformSpec(
            name="fast", host_perf=PerfProfile(
                rate_scale=2.0,
                ht_yield=DEFAULT_HOST_PERF.ht_yield,
                spawn_base_s=DEFAULT_HOST_PERF.spawn_base_s,
                spawn_per_log2_s=DEFAULT_HOST_PERF.spawn_per_log2_s,
                affinity_rate=DEFAULT_HOST_PERF.affinity_rate,
                scan_efficiency=DEFAULT_HOST_PERF.scan_efficiency,
                noise_sigma=DEFAULT_HOST_PERF.noise_sigma,
                noise_scale=DEFAULT_HOST_PERF.noise_scale,
            )
        )
        base = HostPerformanceModel(EMIL).time(12, "scatter", 1000.0)
        boosted = HostPerformanceModel(fast).time(12, "scatter", 1000.0)
        assert boosted < base

    def test_noise_sigma_flows_into_the_simulator(self):
        quiet = PlatformSpec(
            name="quiet",
            host_perf=PerfProfile(
                rate_scale=1.0, ht_yield=(1.0, 1.5), scan_efficiency=0.0444,
                noise_sigma=0.0,
            ),
        )
        sim = PlatformSimulator(quiet, seed=3)
        noiseless = PlatformSimulator(quiet, noise=False, seed=3)
        assert sim.measure_host(12, "scatter", 500.0) == pytest.approx(
            noiseless.measure_host(12, "scatter", 500.0)
        )

    def test_validation(self):
        with pytest.raises(ValueError, match="rate_scale"):
            PerfProfile(rate_scale=0.0)
        with pytest.raises(ValueError, match="ht_yield"):
            PerfProfile(ht_yield=())
        with pytest.raises(ValueError, match="scan_efficiency"):
            PerfProfile(scan_efficiency=1.5)
        with pytest.raises(ValueError, match="noise_sigma"):
            PerfProfile(noise_sigma=-0.1)

    def test_profiles_are_hashable_and_frozen(self):
        assert hash(DEFAULT_HOST_PERF) is not None
        with pytest.raises(AttributeError):
            DEFAULT_HOST_PERF.rate_scale = 2.0  # type: ignore[misc]


class TestFleetSimulation:
    """Every registered platform must be simulatable end-to-end."""

    @pytest.mark.parametrize("name", platform_names())
    def test_host_measurement_works_on_every_platform(self, name):
        spec = get_platform(name)
        sim = PlatformSimulator(spec, seed=0)
        t = sim.measure_host(spec.host_hardware_threads, "scatter", 100.0)
        assert t > 0

    @pytest.mark.parametrize(
        "name", [n for n in platform_names() if get_platform(n).has_device]
    )
    def test_device_measurement_works_on_device_platforms(self, name):
        spec = get_platform(name)
        sim = PlatformSimulator(spec, seed=0)
        t = sim.measure_device(spec.max_device_threads, "balanced", 100.0)
        assert t > 0

    def test_platforms_produce_distinct_landscapes(self):
        # The same configuration must time differently across the fleet,
        # otherwise the campaign would be comparing clones.
        times = set()
        for name in platform_names():
            spec = get_platform(name)
            sim = PlatformSimulator(spec, noise=False, seed=0)
            times.add(round(sim.true_host_time(2, "scatter", 1000.0), 6))
        assert len(times) >= 3
