"""Hardware specs (Table III) and their derived quantities."""

import pytest

from repro.machines import EMIL, CPUSpec, PCIeSpec, PhiSpec, PlatformSpec


class TestCPUSpec:
    def test_default_is_e5_2695v2(self):
        cpu = CPUSpec()
        assert cpu.cores == 12
        assert cpu.threads_per_core == 2
        assert cpu.base_freq_ghz == pytest.approx(2.4)
        assert cpu.turbo_freq_ghz == pytest.approx(3.2)

    def test_hardware_threads(self):
        assert CPUSpec().hardware_threads == 24

    def test_rejects_nonpositive_cores(self):
        with pytest.raises(ValueError, match="cores"):
            CPUSpec(cores=0)

    def test_rejects_nonpositive_threads_per_core(self):
        with pytest.raises(ValueError, match="threads_per_core"):
            CPUSpec(threads_per_core=0)

    def test_rejects_turbo_below_base(self):
        with pytest.raises(ValueError, match="frequencies"):
            CPUSpec(base_freq_ghz=3.0, turbo_freq_ghz=2.0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            CPUSpec().cores = 16  # type: ignore[misc]


class TestPhiSpec:
    def test_default_is_7120p(self):
        phi = PhiSpec()
        assert phi.cores == 61
        assert phi.threads_per_core == 4
        assert phi.simd_bits == 512

    def test_usable_cores_excludes_os_core(self):
        assert PhiSpec().usable_cores == 60

    def test_hardware_threads_counts_all_cores(self):
        assert PhiSpec().hardware_threads == 244

    def test_usable_hardware_threads(self):
        assert PhiSpec().usable_hardware_threads == 240

    def test_rejects_reserving_all_cores(self):
        with pytest.raises(ValueError, match="os_reserved_cores"):
            PhiSpec(cores=4, os_reserved_cores=4)

    def test_rejects_negative_reserved(self):
        with pytest.raises(ValueError, match="os_reserved_cores"):
            PhiSpec(os_reserved_cores=-1)


class TestPCIeSpec:
    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError, match="bandwidth"):
            PCIeSpec(effective_bandwidth_gbs=0.0)

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError, match="latency"):
            PCIeSpec(latency_s=-0.1)


class TestPlatformSpec:
    def test_emil_matches_table_iii(self):
        assert EMIL.name == "Emil"
        assert EMIL.sockets == 2
        assert EMIL.host_cores == 24
        assert EMIL.host_hardware_threads == 48
        assert EMIL.device.hardware_threads == 244
        assert EMIL.num_devices == 1

    def test_host_bandwidth_aggregates_sockets(self):
        assert EMIL.host_mem_bandwidth_gbs == pytest.approx(2 * 59.7)

    def test_with_devices_copies(self):
        p8 = EMIL.with_devices(8)
        assert p8.num_devices == 8
        assert EMIL.num_devices == 1  # original untouched

    @pytest.mark.parametrize("n", [0, 9, -1])
    def test_with_devices_rejects_out_of_range(self, n):
        with pytest.raises(ValueError, match="num_devices"):
            EMIL.with_devices(n)

    def test_rejects_nonpositive_sockets(self):
        with pytest.raises(ValueError, match="sockets"):
            PlatformSpec(sockets=0)
