"""PCIe transfer and offload-cost model."""

import pytest

from repro.machines import OffloadCost, offload_cost, transfer_time_s
from repro.machines.spec import PCIeSpec

LINK = PCIeSpec()


class TestTransferTime:
    def test_linear_in_size(self):
        assert transfer_time_s(200, LINK) == pytest.approx(2 * transfer_time_s(100, LINK))

    def test_known_value(self):
        # 6144 MB at 6 GB/s = 1 second.
        assert transfer_time_s(6.0 * 1024, LINK) == pytest.approx(1.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            transfer_time_s(-1, LINK)


class TestOffloadCost:
    def test_zero_mb_costs_nothing(self):
        cost = offload_cost(0.0, LINK)
        assert cost == OffloadCost(0.0, 0.0, 0.0)
        assert cost.total_exposed_s == 0.0

    def test_nonzero_mb_pays_launch_latency(self):
        cost = offload_cost(10.0, LINK)
        assert cost.launch_s == pytest.approx(LINK.latency_s)
        assert cost.total_exposed_s > LINK.latency_s

    def test_full_overlap_hides_input_transfer(self):
        hidden = offload_cost(1000.0, LINK, overlap_factor=1.0)
        exposed = offload_cost(1000.0, LINK, overlap_factor=0.0)
        assert hidden.exposed_transfer_s < exposed.exposed_transfer_s
        # The raw wire time is identical either way.
        assert hidden.transfer_s == pytest.approx(exposed.transfer_s)

    def test_overlap_interpolates(self):
        lo = offload_cost(1000.0, LINK, overlap_factor=0.0).exposed_transfer_s
        mid = offload_cost(1000.0, LINK, overlap_factor=0.5).exposed_transfer_s
        hi = offload_cost(1000.0, LINK, overlap_factor=1.0).exposed_transfer_s
        assert hi < mid < lo

    def test_monotone_in_size(self):
        small = offload_cost(10.0, LINK).total_exposed_s
        large = offload_cost(1000.0, LINK).total_exposed_s
        assert large > small

    @pytest.mark.parametrize("bad", [-0.01, 1.01])
    def test_overlap_bounds(self, bad):
        with pytest.raises(ValueError, match="overlap_factor"):
            offload_cost(10.0, LINK, overlap_factor=bad)
