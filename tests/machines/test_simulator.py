"""Measurement simulator: determinism, noise, experiment accounting."""

import pytest

from repro.machines import PlatformSimulator


@pytest.fixture()
def sim():
    return PlatformSimulator(seed=7)


class TestDeterminism:
    def test_same_config_same_measurement(self, sim):
        a = sim.measure_host(24, "scatter", 1000.0)
        b = sim.measure_host(24, "scatter", 1000.0)
        assert a == b

    def test_different_seeds_differ(self):
        a = PlatformSimulator(seed=1).measure_host(24, "scatter", 1000.0)
        b = PlatformSimulator(seed=2).measure_host(24, "scatter", 1000.0)
        assert a != b

    def test_different_configs_get_independent_noise(self, sim):
        t1 = sim.measure_host(24, "scatter", 1000.0)
        t2 = sim.measure_host(24, "scatter", 1000.0001)
        assert t1 != t2


class TestNoise:
    def test_noiseless_matches_true_time(self):
        sim = PlatformSimulator(noise=False)
        assert sim.measure_host(24, "scatter", 1000.0) == sim.true_host_time(
            24, "scatter", 1000.0
        )

    def test_noise_is_bounded_percent(self, sim):
        t = sim.measure_host(24, "scatter", 1000.0)
        truth = sim.true_host_time(24, "scatter", 1000.0)
        assert abs(t - truth) / truth < 0.15  # 2% sigma, far tail excluded

    def test_device_noise_bounded(self, sim):
        t = sim.measure_device(120, "balanced", 1000.0)
        truth = sim.true_device_time(120, "balanced", 1000.0)
        assert abs(t - truth) / truth < 0.15


class TestAccounting:
    def test_measurements_are_counted(self, sim):
        sim.measure_host(24, "scatter", 100.0)
        sim.measure_device(60, "balanced", 100.0)
        assert sim.experiment_count == 2

    def test_oracle_access_is_free(self, sim):
        sim.true_host_time(24, "scatter", 100.0)
        sim.true_device_time(60, "balanced", 100.0)
        assert sim.experiment_count == 0

    def test_log_records_order_and_sides(self, sim):
        sim.measure_host(24, "scatter", 100.0)
        sim.measure_device(60, "balanced", 200.0)
        log = sim.log
        assert [m.side for m in log] == ["host", "device"]
        assert log[1].mb == 200.0

    def test_reset_counter(self, sim):
        sim.measure_host(24, "scatter", 100.0)
        sim.reset_counter()
        assert sim.experiment_count == 0
        assert sim.log == []
