"""Bandwidth rooflines and rate blending."""

import pytest

from repro.machines.memory import (
    combine_rates,
    device_scan_roofline_mbs,
    host_scan_roofline_mbs,
)
from repro.machines.spec import EMIL
from repro.machines.topology import PlacementStats


def stats(n_threads: int, cores: int, sockets: int) -> PlacementStats:
    return PlacementStats(
        n_threads=n_threads,
        cores_used=cores,
        sockets_used=sockets,
        threads_per_core=((1, cores),),
    )


class TestRooflines:
    def test_host_two_socket_roofline_near_5_gbs(self):
        r = host_scan_roofline_mbs(EMIL, stats(48, 24, 2))
        assert 4500 < r < 6500

    def test_single_socket_roofline_is_reduced(self):
        both = host_scan_roofline_mbs(EMIL, stats(24, 12, 2))
        one = host_scan_roofline_mbs(EMIL, stats(24, 12, 1))
        assert one < both
        assert one > 0.4 * both

    def test_device_roofline_near_7_5_gbs(self):
        r = device_scan_roofline_mbs(EMIL.device)
        assert 6500 < r < 8500


class TestCombineRates:
    def test_below_both_inputs(self):
        assert combine_rates(1000, 1000) < 1000

    def test_harmonic_value(self):
        assert combine_rates(1000, 1000) == pytest.approx(500.0)

    def test_dominated_by_smaller(self):
        assert combine_rates(100, 1e9) == pytest.approx(100.0, rel=1e-4)

    def test_symmetric(self):
        assert combine_rates(123, 456) == pytest.approx(combine_rates(456, 123))

    @pytest.mark.parametrize("a,b", [(0, 1), (1, 0), (-1, 1)])
    def test_rejects_nonpositive(self, a, b):
        with pytest.raises(ValueError):
            combine_rates(a, b)
