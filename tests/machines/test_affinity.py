"""Affinity policies: none/scatter/compact (host), balanced/scatter/compact (device)."""

import pytest

from repro.machines import (
    DEVICE_AFFINITIES,
    EMIL,
    HOST_AFFINITIES,
    affinity_index,
    place_device_threads,
    place_host_threads,
    placement_stats,
    validate_placement,
)


class TestHostPlacement:
    @pytest.mark.parametrize("affinity", HOST_AFFINITIES)
    @pytest.mark.parametrize("n", [1, 2, 6, 12, 24, 36, 48])
    def test_placements_are_physically_valid(self, affinity, n):
        slots = place_host_threads(n, affinity, EMIL)
        assert len(slots) == n
        validate_placement(slots, cpu=EMIL.cpu)

    def test_scatter_spreads_across_sockets_first(self):
        stats = placement_stats(place_host_threads(2, "scatter", EMIL))
        assert stats.sockets_used == 2
        assert stats.cores_used == 2

    def test_scatter_avoids_hyperthreads_until_cores_full(self):
        stats = placement_stats(place_host_threads(24, "scatter", EMIL))
        assert stats.cores_used == 24
        assert stats.max_occupancy == 1

    def test_scatter_48_fills_every_hwthread(self):
        stats = placement_stats(place_host_threads(48, "scatter", EMIL))
        assert stats.occupancy_histogram == {2: 24}

    def test_compact_packs_one_socket_first(self):
        stats = placement_stats(place_host_threads(24, "compact", EMIL))
        assert stats.sockets_used == 1
        assert stats.cores_used == 12
        assert stats.max_occupancy == 2

    def test_compact_two_threads_share_core(self):
        stats = placement_stats(place_host_threads(2, "compact", EMIL))
        assert stats.cores_used == 1
        assert stats.occupancy_histogram == {2: 1}

    def test_none_spreads_like_scatter(self):
        assert place_host_threads(13, "none", EMIL) == place_host_threads(
            13, "scatter", EMIL
        )

    def test_rejects_overflow(self):
        with pytest.raises(ValueError, match="at most 48"):
            place_host_threads(49, "scatter", EMIL)

    def test_rejects_zero_threads(self):
        with pytest.raises(ValueError, match="positive"):
            place_host_threads(0, "scatter", EMIL)

    def test_rejects_unknown_affinity(self):
        with pytest.raises(ValueError, match="unknown host affinity"):
            place_host_threads(2, "balanced", EMIL)  # balanced is device-only


class TestDevicePlacement:
    @pytest.mark.parametrize("affinity", DEVICE_AFFINITIES)
    @pytest.mark.parametrize("n", [1, 2, 4, 16, 60, 120, 240])
    def test_placements_are_physically_valid(self, affinity, n):
        slots = place_device_threads(n, affinity, EMIL.device)
        assert len(slots) == n
        validate_placement(slots, device=EMIL.device)

    def test_balanced_spreads_across_cores(self):
        stats = placement_stats(place_device_threads(60, "balanced", EMIL.device))
        assert stats.cores_used == 60
        assert stats.max_occupancy == 1

    def test_balanced_120_two_per_core(self):
        stats = placement_stats(place_device_threads(120, "balanced", EMIL.device))
        assert stats.occupancy_histogram == {2: 60}

    def test_balanced_keeps_consecutive_threads_together(self):
        slots = place_device_threads(90, "balanced", EMIL.device)
        # 90 threads on 60 cores: 30 cores with 2, 30 with 1, consecutive
        # threads 0,1 share core 0.
        assert slots[0].core == slots[1].core == 0
        stats = placement_stats(slots)
        assert stats.occupancy_histogram == {1: 30, 2: 30}

    def test_compact_fills_cores_fully(self):
        stats = placement_stats(place_device_threads(8, "compact", EMIL.device))
        assert stats.cores_used == 2
        assert stats.occupancy_histogram == {4: 2}

    def test_scatter_round_robins(self):
        stats = placement_stats(place_device_threads(61, "scatter", EMIL.device))
        assert stats.cores_used == 60
        assert stats.occupancy_histogram == {1: 59, 2: 1}

    def test_rejects_overflow(self):
        with pytest.raises(ValueError, match="at most 240"):
            place_device_threads(241, "balanced", EMIL.device)

    def test_rejects_host_affinity_name(self):
        with pytest.raises(ValueError, match="unknown device affinity"):
            place_device_threads(2, "none", EMIL.device)


class TestAffinityIndex:
    def test_host_indices_are_stable(self):
        assert [affinity_index(a, "host") for a in HOST_AFFINITIES] == [0, 1, 2]

    def test_device_indices_are_stable(self):
        assert [affinity_index(a, "device") for a in DEVICE_AFFINITIES] == [0, 1, 2]

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown"):
            affinity_index("interleave", "host")
