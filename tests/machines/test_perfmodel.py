"""Calibration and shape of the analytic performance model.

These tests pin the decision landscape the paper's method depends on
(DESIGN.md section 2) — if any of them breaks, the reproduction's
figures/tables lose their meaning.
"""

import pytest

from repro.machines import (
    DNA_SCAN,
    DevicePerformanceModel,
    HostPerformanceModel,
    WorkloadProfile,
)

HOST = HostPerformanceModel()
DEVICE = DevicePerformanceModel()


class TestHostModel:
    def test_zero_mb_is_free(self):
        assert HOST.time(48, "scatter", 0.0) == 0.0

    def test_rejects_negative_mb(self):
        with pytest.raises(ValueError):
            HOST.time(48, "scatter", -1.0)

    def test_time_monotone_in_threads(self):
        times = [HOST.time(n, "scatter", 3099.0) for n in (2, 6, 12, 24, 36, 48)]
        assert all(a > b for a, b in zip(times, times[1:]))

    def test_time_linearish_in_size(self):
        t1 = HOST.time(24, "scatter", 1000.0)
        t2 = HOST.time(24, "scatter", 2000.0)
        assert t2 == pytest.approx(2 * t1, rel=0.05)

    def test_fig5_curve_bands(self):
        # Paper Fig. 5 at ~3.1 GB: 6 threads ~2.4 s ... 48 threads ~0.9 s.
        assert 2.0 < HOST.time(6, "scatter", 3099.0) < 3.0
        assert 1.2 < HOST.time(12, "scatter", 3099.0) < 1.9
        assert 0.8 < HOST.time(24, "scatter", 3099.0) < 1.3
        assert 0.6 < HOST.time(48, "scatter", 3099.0) < 1.1

    def test_saturation_sublinear_scaling(self):
        # Doubling 24 -> 48 threads must gain much less than 2x (roofline).
        gain = HOST.time(24, "scatter", 3099.0) / HOST.time(48, "scatter", 3099.0)
        assert 1.0 < gain < 1.4

    def test_compact_single_socket_bandwidth_penalty(self):
        # 12 threads compact sit on one socket; scatter uses both.
        assert HOST.rate_mbs(12, "compact") < HOST.rate_mbs(12, "scatter")

    def test_none_slightly_slower_than_scatter(self):
        assert HOST.rate_mbs(24, "none") < HOST.rate_mbs(24, "scatter")

    def test_big_dfa_table_slows_scanning(self):
        big = HostPerformanceModel(workload=WorkloadProfile(table_kb=4096.0))
        assert big.rate_mbs(24, "scatter") < HOST.rate_mbs(24, "scatter")


class TestDeviceModel:
    def test_zero_mb_is_free(self):
        assert DEVICE.time(240, "balanced", 0.0) == 0.0

    def test_time_monotone_in_threads(self):
        times = [
            DEVICE.time(n, "balanced", 3099.0)
            for n in (2, 4, 8, 16, 30, 60, 120, 180, 240)
        ]
        assert all(a > b for a, b in zip(times, times[1:]))

    def test_paper_span_two_threads_slowest(self):
        # Section IV-B: device times span ~0.9-42 s across configurations.
        assert 30.0 < DEVICE.time(2, "balanced", 3170.0) < 55.0
        assert 0.8 < DEVICE.time(240, "balanced", 3170.0) < 1.6

    def test_device_needs_many_threads_to_compete_with_host(self):
        host_best = HOST.time(48, "scatter", 3170.0)
        assert DEVICE.time(60, "balanced", 3170.0) > host_best
        assert DEVICE.time(240, "balanced", 3170.0) < 2.0 * host_best

    def test_compact_low_thread_counts_use_fewer_cores(self):
        # 60 threads compact = 15 cores; balanced = 60 cores.
        assert DEVICE.rate_mbs(60, "compact") < DEVICE.rate_mbs(60, "balanced")

    def test_offload_region_includes_transfer(self):
        compute = DEVICE.compute_time(240, "balanced", 1000.0)
        full = DEVICE.time(240, "balanced", 1000.0)
        assert full > compute

    def test_hyperthreading_yield_beyond_one_per_core(self):
        # 120 threads (2/core) must beat 60 (1/core) but not by 2x.
        r60 = DEVICE.rate_mbs(60, "balanced")
        r120 = DEVICE.rate_mbs(120, "balanced")
        assert r60 < r120 < 1.8 * r60


class TestDecisionLandscape:
    """The crossovers that motivate the paper (Fig. 2)."""

    def best_fraction(self, size_mb: float, host_threads: int) -> float:
        best, best_e = None, float("inf")
        for f in range(0, 101, 5):
            th = HOST.time(host_threads, "scatter", size_mb * f / 100.0) if f else 0.0
            td = (
                DEVICE.time(240, "balanced", size_mb * (100 - f) / 100.0)
                if f < 100
                else 0.0
            )
            e = max(th, td)
            if e < best_e:
                best, best_e = f, e
        return best

    def test_small_input_cpu_only_wins(self):
        assert self.best_fraction(190.0, 48) == 100.0

    def test_large_input_splits_around_60_40(self):
        assert 50.0 <= self.best_fraction(3250.0, 48) <= 75.0

    def test_few_host_threads_shift_work_to_device(self):
        assert self.best_fraction(3250.0, 4) <= 40.0

    def test_heterogeneous_speedup_bands(self):
        size = 3170.0
        best_f = self.best_fraction(size, 48)
        e = max(
            HOST.time(48, "scatter", size * best_f / 100.0),
            DEVICE.time(240, "balanced", size * (100 - best_f) / 100.0),
        )
        host_only = HOST.time(48, "scatter", size)
        device_only = DEVICE.time(240, "balanced", size)
        assert 1.4 < host_only / e < 2.2  # paper: 1.68-1.95 for EM
        assert 1.8 < device_only / e < 2.7  # paper: 2.02-2.36 for EM


class TestWorkloadProfile:
    def test_rejects_nonpositive_rates(self):
        with pytest.raises(ValueError):
            WorkloadProfile(host_rate_mbs=0.0)
        with pytest.raises(ValueError):
            WorkloadProfile(device_rate_mbs=-1.0)

    def test_rejects_negative_table(self):
        with pytest.raises(ValueError):
            WorkloadProfile(table_kb=-1.0)

    def test_default_profile_is_dna_scan(self):
        assert DNA_SCAN.name == "dna-scan"
