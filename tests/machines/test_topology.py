"""Slot enumeration and placement statistics."""

import pytest

from repro.machines import (
    EMIL,
    CPUSpec,
    PhiSpec,
    Slot,
    device_slots,
    host_slots,
    placement_stats,
    validate_placement,
)


class TestEnumeration:
    def test_host_slot_count(self):
        assert len(host_slots(EMIL)) == 48

    def test_host_slots_unique(self):
        slots = host_slots(EMIL)
        assert len(set(slots)) == len(slots)

    def test_device_slot_count_excludes_os_core(self):
        assert len(device_slots(EMIL.device)) == 240

    def test_device_slots_are_socket_zero(self):
        assert all(s.socket == 0 for s in device_slots(EMIL.device))


class TestPlacementStats:
    def test_empty_placement(self):
        stats = placement_stats([])
        assert stats.n_threads == 0
        assert stats.cores_used == 0
        assert stats.sockets_used == 0
        assert stats.max_occupancy == 0

    def test_single_core_two_threads(self):
        stats = placement_stats([Slot(0, 3, 0), Slot(0, 3, 1)])
        assert stats.n_threads == 2
        assert stats.cores_used == 1
        assert stats.sockets_used == 1
        assert stats.occupancy_histogram == {2: 1}
        assert stats.max_occupancy == 2

    def test_cross_socket_spread(self):
        stats = placement_stats([Slot(0, 0, 0), Slot(1, 0, 0), Slot(1, 5, 0)])
        assert stats.sockets_used == 2
        assert stats.cores_used == 3
        assert stats.occupancy_histogram == {1: 3}

    def test_mixed_occupancy_histogram(self):
        slots = [Slot(0, 0, 0), Slot(0, 0, 1), Slot(0, 1, 0)]
        stats = placement_stats(slots)
        assert stats.occupancy_histogram == {1: 1, 2: 1}


class TestValidatePlacement:
    def test_valid_host_placement_passes(self):
        validate_placement([Slot(0, 0, 0), Slot(1, 11, 1)], cpu=CPUSpec())

    def test_duplicate_slot_rejected(self):
        with pytest.raises(ValueError, match="twice"):
            validate_placement([Slot(0, 0, 0), Slot(0, 0, 0)], cpu=CPUSpec())

    def test_core_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="core"):
            validate_placement([Slot(0, 12, 0)], cpu=CPUSpec())

    def test_hwthread_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="hwthread"):
            validate_placement([Slot(0, 0, 2)], cpu=CPUSpec())

    def test_device_core_range_uses_usable_cores(self):
        with pytest.raises(ValueError, match="core"):
            validate_placement([Slot(0, 60, 0)], device=PhiSpec())
        validate_placement([Slot(0, 59, 3)], device=PhiSpec())

    def test_requires_exactly_one_spec(self):
        with pytest.raises(ValueError, match="exactly one"):
            validate_placement([], cpu=CPUSpec(), device=PhiSpec())
        with pytest.raises(ValueError, match="exactly one"):
            validate_placement([])
