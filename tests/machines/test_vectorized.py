"""Scalar-vs-vectorized equivalence of the analytic core.

The columnar fast path (``times_batch`` / ``measure_*_columns`` /
``enumerate_best_separable`` / columnar training grids) must be
bit-identical to per-item scalar calls on every registered platform and
workload — same times, same noise draws, same best configurations, same
tie-breaks, same experiment accounting — including on the deviceless
``manycore`` platform, whose collapsed space must never touch the
device side.  The per-key noise stream itself is pinned by golden
values so the documented seed-per-key scheme cannot drift silently.
"""

import numpy as np
import pytest

from repro.core import (
    ConfigTable,
    MeasurementEvaluator,
    enumerate_best,
    enumerate_best_separable,
    generate_training_data,
    make_engine,
)
from repro.core.params import ParameterSpace, workload_space
from repro.dna.workloads import workload_names
from repro.machines import (
    DevicePerformanceModel,
    HostPerformanceModel,
    PlatformSimulator,
    get_platform,
    platform_names,
)
from repro.machines.affinity import DEVICE_AFFINITIES, HOST_AFFINITIES
from repro.machines.simulator import _gaussian_batch, _gaussian_scalar

PLATFORMS = tuple(platform_names())
WORKLOADS = tuple(workload_names())
#: A compact but regime-spanning scenario sample for the slowest checks.
SCENARIOS = [
    ("emil", "dna-paper"),
    ("fathost", "dense-motif"),
    ("dualphi", "short-read"),
    ("slowlink", "long-genome"),
    ("manycore", "dna-paper"),
]


def small_space(platform_name: str, workload: str) -> ParameterSpace:
    """A sub-space small enough for faithful per-config walks."""
    space = workload_space(workload, get_platform(platform_name))
    return ParameterSpace(
        host_threads=space.host_threads[::2],
        host_affinities=space.host_affinities,
        device_threads=space.device_threads[::3],
        device_affinities=space.device_affinities,
        fractions=space.fractions[::5],
        max_fraction_steps=space.max_fraction_steps,
    )


class TestNoiseScheme:
    #: Golden draws of the documented seed-per-key scheme: (seed,
    #: side_code, threads, affinity_code, mb) -> Irwin-Hall(4) deviate.
    GOLDEN = {
        (0, 0, 2, 0, 100.0): 0.10383137252415812,
        (0, 1, 240, 2, 3170.0): -1.7082467702589015,
        (7, 0, 48, 1, 79.25): -0.3785656505041293,
        (123, 1, 60, 0, 0.0): 0.2030113449854787,
    }

    def test_golden_draws_pinned(self):
        for key, want in self.GOLDEN.items():
            assert _gaussian_scalar(*key) == want

    def test_scalar_and_batch_hashes_identical(self):
        rng = np.random.default_rng(3)
        n = 4096
        threads = rng.integers(1, 400, n)
        codes = rng.integers(0, 3, n)
        mb = rng.uniform(0.0, 40000.0, n)
        for seed in (0, 7, -1, 2**63):
            for side in (0, 1):
                batch = _gaussian_batch(seed, side, threads, codes, mb)
                scalar = np.array(
                    [
                        _gaussian_scalar(seed, side, int(t), int(c), float(m))
                        for t, c, m in zip(threads, codes, mb)
                    ]
                )
                assert np.array_equal(batch, scalar)

    def test_draws_are_standardized_and_bounded(self):
        rng = np.random.default_rng(4)
        z = _gaussian_batch(
            0, 0, rng.integers(1, 64, 50000), rng.integers(0, 3, 50000),
            rng.uniform(0, 5000, 50000),
        )
        assert abs(z.mean()) < 0.02
        assert abs(z.std() - 1.0) < 0.02
        assert np.all(np.abs(z) <= 2 * 1.7320508075688772)

    def test_high_sigma_profiles_stay_positive(self):
        """Factors are floored, so even extreme custom profiles cannot
        produce non-positive measured times — and the scalar and batch
        paths agree at the clamp."""
        from dataclasses import replace

        from repro.machines import EMIL

        loud = replace(EMIL, host_perf=replace(EMIL.host_perf, noise_sigma=0.5))
        sim_scalar = PlatformSimulator(loud, seed=0)
        sim_batch = PlatformSimulator(loud, seed=0)
        mb = np.linspace(1.0, 4000.0, 2000)
        threads = np.full(2000, 24)
        codes = np.ones(2000, dtype=np.int64)
        batch = sim_batch.measure_host_columns(threads, codes, mb)
        assert np.all(batch > 0)
        scalar = [sim_scalar.measure_host(24, "scatter", float(m)) for m in mb]
        assert batch.tolist() == scalar

    def test_golden_measurements_pinned(self):
        sim = PlatformSimulator(seed=0)
        assert sim.measure_host(24, "scatter", 1000.0) == 0.3317231658206994
        assert sim.measure_device(120, "balanced", 1000.0) == 0.5376163976565234
        other = PlatformSimulator("slowlink", "dense-motif", seed=7)
        assert other.measure_host(12, "none", 500.0) == 0.5042601861636687


@pytest.mark.parametrize("platform", PLATFORMS)
@pytest.mark.parametrize("workload", ("dna-paper", "dense-motif"))
class TestPerfModelBatch:
    def probes(self, space, rng, n=256):
        ht = np.asarray(space.host_threads)[rng.integers(0, len(space.host_threads), n)]
        ha = rng.integers(0, len(HOST_AFFINITIES), n)
        dt = np.asarray(space.device_threads)[
            rng.integers(0, len(space.device_threads), n)
        ]
        da = rng.integers(0, len(DEVICE_AFFINITIES), n)
        mb = rng.uniform(0.0, 4000.0, n)
        mb[rng.random(n) < 0.1] = 0.0
        return ht, ha, dt, da, mb

    def test_times_batch_bit_identical_to_scalar(self, platform, workload):
        spec = get_platform(platform)
        sim = PlatformSimulator(spec, workload, seed=0)
        space = workload_space(workload, spec)
        rng = np.random.default_rng(11)
        ht, ha, dt, da, mb = self.probes(space, rng)
        host = HostPerformanceModel(spec, sim.workload)
        batch = host.times_batch(ht, ha, mb)
        scalar = [
            host.time(int(t), HOST_AFFINITIES[int(c)], float(m))
            for t, c, m in zip(ht, ha, mb)
        ]
        assert batch.tolist() == scalar
        if spec.has_device:
            device = DevicePerformanceModel(spec, sim.workload)
            batch = device.times_batch(dt, da, mb)
            scalar = [
                device.time(int(t), DEVICE_AFFINITIES[int(c)], float(m))
                for t, c, m in zip(dt, da, mb)
            ]
            assert batch.tolist() == scalar

    def test_simulator_columns_bit_identical_to_scalar(self, platform, workload):
        spec = get_platform(platform)
        space = workload_space(workload, spec)
        rng = np.random.default_rng(12)
        ht, ha, dt, da, mb = self.probes(space, rng, n=128)
        sim_scalar = PlatformSimulator(spec, workload, seed=5)
        sim_batch = PlatformSimulator(spec, workload, seed=5)
        want = [
            sim_scalar.measure_host(int(t), HOST_AFFINITIES[int(c)], float(m))
            for t, c, m in zip(ht, ha, mb)
        ]
        got = sim_batch.measure_host_columns(ht, ha, mb)
        assert got.tolist() == want
        assert sim_batch.experiment_count == sim_scalar.experiment_count
        assert sim_batch.log == sim_scalar.log


class TestRateComposition:
    """The array rate path must equal the pre-vectorization formula."""

    @pytest.mark.parametrize("platform", PLATFORMS)
    def test_host_rates_match_reference_formula(self, platform):
        from repro.machines.cache import host_locality_factor
        from repro.machines.memory import combine_rates, host_scan_roofline_mbs
        from repro.machines.perfmodel import _aggregate_linear_rate

        spec = get_platform(platform)
        model = HostPerformanceModel(spec)
        space = workload_space("dna-paper", spec)
        for threads in space.host_threads:
            for affinity in HOST_AFFINITIES:
                stats = model.placement(threads, affinity)
                linear = _aggregate_linear_rate(
                    stats,
                    model.workload.host_rate_mbs * model.perf.rate_scale,
                    model.perf.ht_yield_table,
                )
                linear *= host_locality_factor(
                    model.workload.table_kb, spec.cpu
                ) * model.perf.affinity_rates.get(affinity, 1.0)
                roofline = host_scan_roofline_mbs(
                    spec,
                    stats,
                    efficiency=model.perf.scan_efficiency,
                    workload_scale=model.workload.scan_efficiency_scale,
                )
                assert model.rate_mbs(threads, affinity) == combine_rates(
                    linear, roofline
                )


class TestConfigTable:
    def test_from_space_matches_iteration_order(self):
        space = small_space("emil", "dna-paper")
        table = ConfigTable.from_space(space)
        assert len(table) == space.size()
        assert table.configs() == list(space.iter_configs())

    def test_round_trip_through_configs(self):
        space = small_space("fathost", "short-read")
        rng = np.random.default_rng(0)
        configs = [space.random_config(rng) for _ in range(64)]
        table = ConfigTable.from_configs(configs)
        assert table.configs() == configs
        np.testing.assert_array_equal(
            table.host_mb(1000.0),
            [1000.0 * c.host_fraction / 100.0 for c in configs],
        )

    def test_column_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            ConfigTable([2, 4], [0, 0], [2], [0], [50.0, 50.0])


@pytest.mark.parametrize("platform,workload", SCENARIOS)
class TestEnumerationEquivalence:
    def test_separable_matches_faithful_walk(self, platform, workload):
        space = small_space(platform, workload)
        size = 900.0
        walk = enumerate_best(
            space,
            MeasurementEvaluator(PlatformSimulator(platform, workload, seed=2)),
            size,
        )
        fast = enumerate_best_separable(
            space, PlatformSimulator(platform, workload, seed=2), size
        )
        assert fast.best_config == walk.best_config
        assert fast.best_energy == walk.best_energy
        assert fast.configurations == walk.configurations == space.size()

    def test_training_grids_bit_identical(self, platform, workload):
        spec = get_platform(platform)
        if not spec.has_device:
            pytest.skip("deviceless platforms cannot train a device model")
        space = workload_space(workload, spec)
        kwargs = dict(
            sizes_mb=(900.0, 450.0),
            fractions=(25.0, 50.0, 75.0),
            host_threads=space.host_threads,
            device_threads=space.device_threads,
        )
        columnar = generate_training_data(
            PlatformSimulator(platform, workload, seed=3), **kwargs
        )
        reference = generate_training_data(
            PlatformSimulator(platform, workload, seed=3), **kwargs
        )
        # Scalar reference: re-measure the same grid per item.
        sim = PlatformSimulator(platform, workload, seed=3)
        host_y = [
            sim.measure_host(int(row[0]), HOST_AFFINITIES[int(np.argmax(row[1:-1]))], row[-1])
            for row in columnar.host.X
        ]
        device_y = [
            sim.measure_device(
                int(row[0]), DEVICE_AFFINITIES[int(np.argmax(row[1:-1]))], row[-1]
            )
            for row in columnar.device.X
        ]
        assert columnar.host.y.tolist() == host_y
        assert columnar.device.y.tolist() == device_y
        np.testing.assert_array_equal(columnar.host.X, reference.host.X)
        np.testing.assert_array_equal(columnar.device.y, reference.device.y)


@pytest.mark.parametrize("engine_name", ["serial", "cached", "batched", "cached+batched"])
class TestEngineParametrizedEnumeration:
    """The faithful walk is engine-independent on the vectorized evaluator."""

    def test_enumerate_best_identical_across_engines(self, engine_name):
        space = small_space("emil", "dna-paper")
        reference = enumerate_best(
            space, MeasurementEvaluator(PlatformSimulator(seed=4)), 700.0
        )
        engine = make_engine(engine_name, batch_size=128)
        result = enumerate_best(
            space,
            MeasurementEvaluator(PlatformSimulator(seed=4)),
            700.0,
            engine=engine,
        )
        assert result.best_config == reference.best_config
        assert result.best_energy == reference.best_energy
        assert result.configurations == reference.configurations


class TestDevicelessGuard:
    """The ``manycore`` platform has no accelerator: the collapsed space
    pins work to the host and the vectorized paths must never touch the
    device side."""

    def test_space_walks_never_measure_the_device(self):
        space = workload_space("dna-paper", get_platform("manycore"))
        assert space.fractions == (100.0,)
        sim = PlatformSimulator("manycore", seed=0)
        result = enumerate_best_separable(space, sim, 800.0)
        assert result.best_config.host_fraction == 100.0
        assert all(m.side == "host" for m in sim.log)
        assert sim.experiment_count == len(space.host_threads) * len(
            space.host_affinities
        )

    def test_batched_evaluator_never_measures_the_device(self):
        space = workload_space("dna-paper", get_platform("manycore"))
        sim = PlatformSimulator("manycore", seed=0)
        evaluator = MeasurementEvaluator(sim)
        energies = evaluator.evaluate_batch(list(space.iter_configs()), 800.0)
        assert all(e.t_device == 0.0 for e in energies)
        assert all(m.side == "host" for m in sim.log)

    def test_deviceless_results_match_scalar_path(self):
        space = workload_space("dna-paper", get_platform("manycore"))
        configs = list(space.iter_configs())
        scalar = [
            MeasurementEvaluator(PlatformSimulator("manycore", seed=1)).evaluate(
                c, 800.0
            )
            for c in configs
        ]
        batch = MeasurementEvaluator(
            PlatformSimulator("manycore", seed=1)
        ).evaluate_batch(configs, 800.0)
        assert batch == scalar
