"""Cache model: locality factors and scaling-law helpers."""

import pytest

from repro.machines.cache import (
    amdahl_speedup,
    device_locality_factor,
    effective_simd_lanes,
    gustafson_speedup,
    host_locality_factor,
    locality_factor,
    log2_threads,
    working_set_kb,
)
from repro.machines.spec import CPUSpec, PhiSpec


class TestLocalityFactor:
    def test_zero_footprint_is_free(self):
        assert locality_factor(0.0, 32, 256, 30720) == 1.0

    def test_tiny_table_is_nearly_free(self):
        assert locality_factor(1.0, 32, 256, 30720) > 0.99

    def test_monotone_nonincreasing_in_footprint(self):
        sizes = [1, 8, 64, 512, 4096, 32768, 262144]
        factors = [locality_factor(s, 32, 256, 30720) for s in sizes]
        assert all(a >= b for a, b in zip(factors, factors[1:]))

    def test_dram_resident_table_is_penalized_hard(self):
        assert locality_factor(1e6, 32, 256, 30720) < 0.5

    def test_floor_at_5_percent(self):
        assert locality_factor(1e12, 32, 256, 30720) >= 0.05

    def test_negative_footprint_rejected(self):
        with pytest.raises(ValueError, match="table_kb"):
            locality_factor(-1.0, 32, 256, 30720)

    def test_host_wrapper_uses_cpu_hierarchy(self):
        cpu = CPUSpec()
        assert host_locality_factor(1.0, cpu) > host_locality_factor(1e5, cpu)

    def test_device_wrapper_uses_phi_hierarchy(self):
        phi = PhiSpec()
        assert device_locality_factor(1.0, phi) > device_locality_factor(1e5, phi)


class TestWorkingSet:
    def test_dense_dfa_footprint(self):
        # 53 states x 5 symbols x 4 bytes = 1060 bytes.
        assert working_set_kb(53, 5) == pytest.approx(1060 / 1024)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            working_set_kb(-1, 5)


class TestScalingLaws:
    def test_amdahl_limits(self):
        assert amdahl_speedup(1.0, 16) == pytest.approx(16.0)
        assert amdahl_speedup(0.0, 16) == pytest.approx(1.0)

    def test_amdahl_classic_value(self):
        # 95% parallel at infinity-ish n approaches 20x.
        assert amdahl_speedup(0.95, 1e9) == pytest.approx(20.0, rel=1e-6)

    def test_gustafson_scales_linearly(self):
        assert gustafson_speedup(1.0, 64) == pytest.approx(64.0)
        assert gustafson_speedup(0.5, 64) == pytest.approx(32.5)

    @pytest.mark.parametrize("bad", [-0.1, 1.1])
    def test_fraction_bounds(self, bad):
        with pytest.raises(ValueError):
            amdahl_speedup(bad, 4)
        with pytest.raises(ValueError):
            gustafson_speedup(bad, 4)

    def test_simd_lanes(self):
        assert effective_simd_lanes(512, 8) == 64
        assert effective_simd_lanes(512, 32) == 16
        assert effective_simd_lanes(256, 64) == 4

    def test_simd_lanes_rejects_zero(self):
        with pytest.raises(ValueError):
            effective_simd_lanes(0)

    def test_log2_threads(self):
        assert log2_threads(8) == pytest.approx(3.0)
        with pytest.raises(ValueError):
            log2_threads(0)
