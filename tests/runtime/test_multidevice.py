"""Multi-accelerator extension (1-8 devices)."""

import pytest

from repro.machines import EMIL
from repro.runtime import (
    DeviceAssignment,
    MultiDeviceConfiguration,
    MultiDeviceRuntime,
)


def two_device_config(host_share=40.0):
    each = (100.0 - host_share) / 2
    return MultiDeviceConfiguration(
        host_threads=48,
        host_affinity="scatter",
        host_share=host_share,
        devices=(
            DeviceAssignment(240, "balanced", each),
            DeviceAssignment(240, "balanced", each),
        ),
    )


class TestConfiguration:
    def test_shares_must_sum_to_100(self):
        with pytest.raises(ValueError, match="sum to 100"):
            MultiDeviceConfiguration(
                host_threads=48,
                host_affinity="scatter",
                host_share=50.0,
                devices=(DeviceAssignment(240, "balanced", 40.0),),
            )

    def test_assignment_validation(self):
        with pytest.raises(ValueError):
            DeviceAssignment(0, "balanced", 10.0)
        with pytest.raises(ValueError):
            DeviceAssignment(60, "balanced", 101.0)


class TestRuntime:
    def test_outcome_total_is_max_over_all_parts(self):
        rt = MultiDeviceRuntime(EMIL.with_devices(2), seed=0)
        out = rt.run(two_device_config(), 3170.0)
        assert out.total == max(out.t_host, *out.t_devices)
        assert len(out.t_devices) == 2

    def test_device_count_mismatch_rejected(self):
        rt = MultiDeviceRuntime(EMIL.with_devices(2), seed=0)
        single = MultiDeviceConfiguration(
            host_threads=48,
            host_affinity="scatter",
            host_share=60.0,
            devices=(DeviceAssignment(240, "balanced", 40.0),),
        )
        with pytest.raises(ValueError, match="devices"):
            rt.run(single, 1000.0)

    def test_zero_share_device_is_idle(self):
        rt = MultiDeviceRuntime(EMIL.with_devices(2), seed=0)
        cfg = MultiDeviceConfiguration(
            host_threads=48,
            host_affinity="scatter",
            host_share=60.0,
            devices=(
                DeviceAssignment(240, "balanced", 40.0),
                DeviceAssignment(240, "balanced", 0.0),
            ),
        )
        out = rt.run(cfg, 1000.0)
        assert out.t_devices[1] == 0.0

    def test_proportional_shares_sum_to_100(self):
        rt = MultiDeviceRuntime(EMIL.with_devices(3), seed=0)
        cfg = rt.proportional_shares(48, "scatter", 240, "balanced", 3170.0)
        total = cfg.host_share + sum(d.share for d in cfg.devices)
        assert total == pytest.approx(100.0)

    def test_more_devices_reduce_execution_time(self):
        times = []
        for n in (1, 2, 4):
            rt = MultiDeviceRuntime(EMIL.with_devices(n), seed=0)
            cfg = rt.proportional_shares(48, "scatter", 240, "balanced", 3170.0)
            times.append(rt.run(cfg, 3170.0).total)
        assert times[0] > times[1] > times[2]

    def test_identity_device_specs_override_keeps_per_card_calibrations(self):
        # Passing the platform's own card list must not change timing:
        # per-card PerfProfiles survive the override (regression: the
        # heterogeneous card used to fall back to the primary's
        # calibration).
        from repro.machines import MIXEDPHI

        plain = MultiDeviceRuntime(MIXEDPHI, noise=False)
        overridden = MultiDeviceRuntime(
            MIXEDPHI, device_specs=MIXEDPHI.device_specs, noise=False
        )
        for k in range(MIXEDPHI.num_devices):
            assert plain.sim.true_device_time(236, "balanced", 500.0, device=k) == (
                overridden.sim.true_device_time(236, "balanced", 500.0, device=k)
            )

    def test_proportional_beats_naive_equal_split(self):
        rt = MultiDeviceRuntime(EMIL.with_devices(2), seed=0)
        prop = rt.proportional_shares(48, "scatter", 240, "balanced", 3170.0)
        naive = MultiDeviceConfiguration(
            host_threads=48,
            host_affinity="scatter",
            host_share=100.0 / 3,
            devices=(
                DeviceAssignment(240, "balanced", 100.0 / 3),
                DeviceAssignment(240, "balanced", 100.0 - 2 * 100.0 / 3),
            ),
        )
        assert rt.run(prop, 3170.0).total < rt.run(naive, 3170.0).total
