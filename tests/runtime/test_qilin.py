"""Qilin-style regression-based partitioning baseline."""

import numpy as np
import pytest

from repro.machines import PlatformSimulator
from repro.runtime import (
    LinearTimeModel,
    QilinPartitioner,
    fit_linear_time,
    run_configuration,
)


class TestLinearTimeModel:
    def test_fit_recovers_exact_line(self):
        sizes = np.array([100.0, 200.0, 400.0])
        times = 0.05 + 0.001 * sizes
        m = fit_linear_time(sizes, times)
        assert m.intercept == pytest.approx(0.05, abs=1e-9)
        assert m.slope == pytest.approx(0.001, abs=1e-12)

    def test_prediction_clipped_at_zero(self):
        m = LinearTimeModel(intercept=-1.0, slope=0.001)
        assert m.time(10.0) == 0.0

    def test_fit_validation(self):
        with pytest.raises(ValueError):
            fit_linear_time(np.array([1.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            fit_linear_time(np.array([1.0, 2.0]), np.array([1.0]))


class TestQilinPartitioner:
    def test_profile_counts_experiments(self):
        sim = PlatformSimulator(seed=0)
        q = QilinPartitioner()
        q.profile(sim, 3170.0)
        assert q.profiling_experiments == 6
        assert sim.experiment_count == 6

    def test_choose_split_before_profile_raises(self):
        with pytest.raises(RuntimeError):
            QilinPartitioner().choose_split(1000.0)

    def test_large_input_split_is_reasonable(self):
        sim = PlatformSimulator(seed=0)
        q = QilinPartitioner()
        q.profile(sim, 3170.0)
        f = q.choose_split(3170.0)
        # The true optimum is ~60/40; linear extrapolation from small
        # profiles lands in the right region.
        assert 35.0 <= f <= 85.0

    def test_small_input_keeps_work_on_host(self):
        sim = PlatformSimulator(seed=0)
        q = QilinPartitioner()
        q.profile(sim, 190.0)
        assert q.choose_split(190.0) == 100.0

    def test_configuration_executes(self):
        sim = PlatformSimulator(seed=0)
        q = QilinPartitioner()
        q.profile(sim, 3170.0)
        cfg = q.configuration(3170.0)
        outcome = run_configuration(sim, cfg, 3170.0)
        # Qilin's split beats both pure executions on the large input.
        host_only = sim.measure_host(48, "scatter", 3170.0)
        device_only = sim.measure_device(240, "balanced", 3170.0)
        assert outcome.total < host_only
        assert outcome.total < device_only

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            QilinPartitioner(profile_fractions=(0.1,))
        with pytest.raises(ValueError):
            QilinPartitioner(profile_fractions=(0.0, 0.5))
