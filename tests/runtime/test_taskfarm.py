"""Dynamic task-farm scheduler baseline."""

import pytest

from repro.machines import PlatformSimulator
from repro.runtime import TaskFarmScheduler


@pytest.fixture(scope="module")
def farm():
    return TaskFarmScheduler(PlatformSimulator(seed=0, noise=False), seed=0)


class TestRun:
    def test_all_tasks_scheduled(self, farm):
        res = farm.run(3170.0, 32)
        assert res.host_tasks + res.device_tasks == 32
        assert len(res.timeline) == 32

    def test_timeline_is_consistent(self, farm):
        res = farm.run(3170.0, 16)
        per_worker = {"host": [], "device": []}
        for rec in res.timeline:
            assert rec.end_s > rec.start_s
            per_worker[rec.worker].append(rec)
        # Tasks on the same worker never overlap.
        for recs in per_worker.values():
            recs.sort(key=lambda r: r.start_s)
            for a, b in zip(recs, recs[1:]):
                assert b.start_s >= a.end_s - 1e-12

    def test_makespan_is_last_completion(self, farm):
        res = farm.run(3170.0, 16)
        assert res.makespan_s == pytest.approx(max(r.end_s for r in res.timeline))

    def test_faster_host_pulls_more_tasks(self, farm):
        res = farm.run(3170.0, 64)
        # Host scan rate ~3.5 GB/s vs device ~3.1 GB/s minus transfer:
        # the host should take the majority of tasks.
        assert res.host_tasks > res.device_tasks

    def test_single_task_runs_on_host(self, farm):
        # The host is free at t=0; the device pays its launch latency.
        res = farm.run(100.0, 1)
        assert res.host_tasks == 1
        assert res.device_tasks == 0

    def test_validation(self, farm):
        with pytest.raises(ValueError):
            farm.run(0.0, 4)
        with pytest.raises(ValueError):
            farm.run(100.0, 0)
        with pytest.raises(ValueError):
            TaskFarmScheduler(PlatformSimulator(), dispatch_overhead_s=-1.0)


class TestGranularity:
    def test_sweep_returns_all_counts(self, farm):
        sweep = farm.sweep_granularity(3170.0, (2, 8, 32))
        assert set(sweep) == {2, 8, 32}

    def test_moderate_granularity_beats_extremes(self, farm):
        sweep = farm.sweep_granularity(3170.0, (2, 32, 4096))
        assert sweep[32].makespan_s < sweep[2].makespan_s
        assert sweep[32].makespan_s < sweep[4096].makespan_s

    def test_best_granularity_is_argmin(self, farm):
        n, best = farm.best_granularity(3170.0, (2, 8, 32, 128))
        sweep = farm.sweep_granularity(3170.0, (2, 8, 32, 128))
        assert best.makespan_s == min(r.makespan_s for r in sweep.values())
        assert sweep[n].makespan_s == best.makespan_s


class TestAgainstStatic:
    def test_near_static_optimum_without_tuning(self):
        """At good granularity the farm self-balances close to the EM
        split's performance — the related-work claim."""
        sim = PlatformSimulator(seed=0, noise=False)
        farm = TaskFarmScheduler(sim, seed=0)
        _, best = farm.best_granularity(3170.0)
        host_only = sim.true_host_time(48, "scatter", 3170.0)
        # EM optimum is ~0.54 s; host-only ~0.88 s.
        assert best.makespan_s < host_only
        assert best.makespan_s < 0.80

    def test_balanced_shares_emerge(self):
        sim = PlatformSimulator(seed=0, noise=False)
        farm = TaskFarmScheduler(sim, seed=0)
        res = farm.run(3170.0, 128)
        # The pull model should discover a host share near the static
        # optimum (~60%) without being told any rates.
        assert 45.0 <= res.host_share_percent <= 75.0
        assert res.utilization > 0.9
