"""Offload execution (Eq. 2) and the adaptive rebalancer."""

import pytest

from repro.core.params import SystemConfiguration
from repro.machines import PlatformSimulator
from repro.runtime import (
    AdaptiveRebalancer,
    ExecutionOutcome,
    StaticSchedule,
    run_configuration,
)


def config(fraction=60.0):
    return SystemConfiguration(48, "scatter", 240, "balanced", fraction)


class TestExecutionOutcome:
    def test_total_is_max(self):
        assert ExecutionOutcome(1.0, 2.0).total == 2.0

    def test_imbalance(self):
        assert ExecutionOutcome(1.0, 1.0).imbalance == 0.0
        assert ExecutionOutcome(0.0, 2.0).imbalance == 1.0
        assert ExecutionOutcome(0.0, 0.0).imbalance == 0.0


class TestRunConfiguration:
    def test_zero_share_sides_not_launched(self):
        sim = PlatformSimulator(seed=0)
        host_only = run_configuration(sim, config(100.0), 1000.0)
        assert host_only.t_device == 0.0
        device_only = run_configuration(sim, config(0.0), 1000.0)
        assert device_only.t_host == 0.0

    def test_noiseless_oracle_not_counted(self):
        sim = PlatformSimulator(seed=0)
        run_configuration(sim, config(), 1000.0, noiseless=True)
        assert sim.experiment_count == 0

    def test_measured_run_counts_two_experiments(self):
        sim = PlatformSimulator(seed=0)
        run_configuration(sim, config(), 1000.0)
        assert sim.experiment_count == 2

    def test_static_schedule_wraps_run(self):
        sim = PlatformSimulator(seed=0)
        out = StaticSchedule(config()).execute(sim, 1000.0)
        assert out.total > 0


class TestAdaptiveRebalancer:
    def test_converges_to_low_imbalance(self):
        sim = PlatformSimulator(seed=0, noise=False)
        reb = AdaptiveRebalancer(rounds=6)
        reb.run(sim, config(10.0), 3170.0)
        assert reb.history[-1].outcome.imbalance < 0.10

    def test_improves_on_bad_start(self):
        sim = PlatformSimulator(seed=0, noise=False)
        reb = AdaptiveRebalancer(rounds=6)
        reb.run(sim, config(5.0), 3170.0)
        assert reb.best_observed.outcome.total < reb.history[0].outcome.total

    def test_final_fraction_near_em_optimum(self):
        sim = PlatformSimulator(seed=0, noise=False)
        reb = AdaptiveRebalancer(rounds=8)
        final = reb.run(sim, config(10.0), 3170.0)
        assert 50.0 <= final.host_fraction <= 75.0

    def test_propose_next_handles_all_on_device(self):
        reb = AdaptiveRebalancer()
        f = reb.propose_next(0.0, ExecutionOutcome(0.0, 2.0))
        assert f > 0.0

    def test_propose_next_handles_all_on_host(self):
        reb = AdaptiveRebalancer()
        f = reb.propose_next(100.0, ExecutionOutcome(2.0, 0.0))
        assert f < 100.0

    def test_history_length_matches_rounds(self):
        sim = PlatformSimulator(seed=1)
        reb = AdaptiveRebalancer(rounds=4)
        reb.run(sim, config(50.0), 1000.0)
        assert len(reb.history) == 4

    def test_multi_device_config_respects_fixed_extra_shares(self):
        # The host fraction may only eat into the primary card's share:
        # extra-device shares are fixed at run time, so every adaptive
        # round must keep host + extras <= 100 (regression: this used
        # to raise "shares must sum to 100").
        from repro.core.params import DeviceSlot

        start = SystemConfiguration(
            48, "scatter", 240, "balanced", 10.0,
            (DeviceSlot(240, "balanced", 70.0),),
        )
        rb = AdaptiveRebalancer(rounds=4)
        final = rb.run(PlatformSimulator("dualphi", seed=0), start, 1000.0)
        assert final.host_fraction <= 30.0
        assert final.extra_devices[0].share == 70.0
        assert len(rb.history) == 4

    def test_sim_resolves_by_platform_name(self):
        rb = AdaptiveRebalancer(rounds=2)
        final = rb.run("emil", config(10.0), 500.0)
        assert 0.0 <= final.host_fraction <= 100.0

    def test_best_observed_before_run_raises(self):
        with pytest.raises(RuntimeError):
            AdaptiveRebalancer().best_observed

    @pytest.mark.parametrize(
        "kwargs",
        [{"rounds": 0}, {"damping": 0.0}, {"damping": 1.5},
         {"min_fraction": 50.0, "max_fraction": 50.0}],
    )
    def test_parameter_validation(self, kwargs):
        with pytest.raises(ValueError):
            AdaptiveRebalancer(**kwargs)
