"""Divisible-workload partitioning."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime import Partition, contiguous_spans, split_elements, split_shares


class TestPartition:
    def test_shares(self):
        p = Partition(1000.0, 62.5)
        assert p.host_mb == pytest.approx(625.0)
        assert p.device_mb == pytest.approx(375.0)
        assert p.device_fraction == pytest.approx(37.5)

    def test_parts_sum_exactly(self):
        p = Partition(3170.0, 33.333333)
        assert p.host_mb + p.device_mb == pytest.approx(3170.0, abs=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            Partition(-1.0, 50.0)
        with pytest.raises(ValueError):
            Partition(10.0, 101.0)


class TestSplitElements:
    def test_sums_to_n(self):
        h, d = split_elements(1001, 60.0)
        assert h + d == 1001

    def test_extremes(self):
        assert split_elements(100, 0.0) == (0, 100)
        assert split_elements(100, 100.0) == (100, 0)

    @given(n=st.integers(0, 10_000), f=st.floats(0, 100, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_property_sums_and_bounds(self, n, f):
        h, d = split_elements(n, f)
        assert h + d == n
        assert 0 <= h <= n


class TestSplitShares:
    def test_proportionality(self):
        assert split_shares(100, [1.0, 1.0]) == [50, 50]
        assert split_shares(100, [3.0, 1.0]) == [75, 25]

    def test_largest_remainder_rounding(self):
        parts = split_shares(10, [1.0, 1.0, 1.0])
        assert sum(parts) == 10
        assert sorted(parts) == [3, 3, 4]

    def test_zero_share_gets_nothing(self):
        assert split_shares(10, [1.0, 0.0]) == [10, 0]

    def test_validation(self):
        with pytest.raises(ValueError):
            split_shares(10, [])
        with pytest.raises(ValueError):
            split_shares(10, [0.0, 0.0])
        with pytest.raises(ValueError):
            split_shares(10, [-1.0, 2.0])
        with pytest.raises(ValueError):
            split_shares(-1, [1.0])

    @given(
        n=st.integers(0, 5000),
        shares=st.lists(st.floats(0, 10, allow_nan=False), min_size=1, max_size=9),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_exact_total(self, n, shares):
        if sum(shares) == 0:
            return
        parts = split_shares(n, shares)
        assert sum(parts) == n
        assert all(p >= 0 for p in parts)


class TestSplitSharesEdgeCases:
    """N-way splits under degenerate and adversarial share vectors."""

    def test_zero_and_full_share_endpoints(self):
        # 0%/100% endpoints: the idle parts get exactly nothing.
        assert split_shares(1000, [0.0, 100.0, 0.0]) == [0, 1000, 0]
        assert split_shares(1000, [100.0]) == [1000]
        assert split_shares(0, [30.0, 70.0]) == [0, 0]

    def test_adversarial_fractions_conserve_every_element(self):
        # Shares engineered so every part has fractional remainder ~0.5
        # (the worst case for naive rounding, which would create or
        # destroy elements).
        parts = split_shares(7, [1.0] * 14)
        assert sum(parts) == 7
        assert sorted(parts) == [0] * 7 + [1] * 7

    def test_tiny_share_never_steals_work(self):
        # A dust-sized share must not round a whole element away from
        # the dominant parts unless the remainder assignment demands it.
        parts = split_shares(10, [1e-9, 50.0, 50.0])
        assert sum(parts) == 10
        assert parts[0] == 0

    def test_share_simplex_vectors_split_exactly(self):
        # Every grid share vector of the multi-device tuner maps n
        # elements onto parts without losing or duplicating work.
        from repro.core.params import share_simplex

        for vec in share_simplex(4, 12.5):
            parts = split_shares(1001, list(vec))
            assert sum(parts) == 1001
            assert all(p >= 0 for p in parts)
            for share, part in zip(vec, parts):
                if share == 0.0:
                    assert part == 0

    @given(
        n=st.integers(0, 10_000),
        shares=st.lists(
            st.floats(0, 100, allow_nan=False), min_size=1, max_size=9
        ).filter(lambda s: sum(s) > 0),
    )
    @settings(max_examples=150, deadline=None)
    def test_property_no_work_lost_or_duplicated(self, n, shares):
        parts = split_shares(n, shares)
        assert sum(parts) == n
        assert len(parts) == len(shares)
        assert all(p >= 0 for p in parts)


class TestContiguousSpans:
    def test_spans_cover_range(self):
        spans = contiguous_spans(10, [3, 3, 4])
        assert spans == [(0, 3), (3, 6), (6, 10)]

    def test_rejects_bad_total(self):
        with pytest.raises(ValueError, match="sum"):
            contiguous_spans(10, [3, 3])
