"""Divisible-workload partitioning."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime import Partition, contiguous_spans, split_elements, split_shares


class TestPartition:
    def test_shares(self):
        p = Partition(1000.0, 62.5)
        assert p.host_mb == pytest.approx(625.0)
        assert p.device_mb == pytest.approx(375.0)
        assert p.device_fraction == pytest.approx(37.5)

    def test_parts_sum_exactly(self):
        p = Partition(3170.0, 33.333333)
        assert p.host_mb + p.device_mb == pytest.approx(3170.0, abs=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            Partition(-1.0, 50.0)
        with pytest.raises(ValueError):
            Partition(10.0, 101.0)


class TestSplitElements:
    def test_sums_to_n(self):
        h, d = split_elements(1001, 60.0)
        assert h + d == 1001

    def test_extremes(self):
        assert split_elements(100, 0.0) == (0, 100)
        assert split_elements(100, 100.0) == (100, 0)

    @given(n=st.integers(0, 10_000), f=st.floats(0, 100, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_property_sums_and_bounds(self, n, f):
        h, d = split_elements(n, f)
        assert h + d == n
        assert 0 <= h <= n


class TestSplitShares:
    def test_proportionality(self):
        assert split_shares(100, [1.0, 1.0]) == [50, 50]
        assert split_shares(100, [3.0, 1.0]) == [75, 25]

    def test_largest_remainder_rounding(self):
        parts = split_shares(10, [1.0, 1.0, 1.0])
        assert sum(parts) == 10
        assert sorted(parts) == [3, 3, 4]

    def test_zero_share_gets_nothing(self):
        assert split_shares(10, [1.0, 0.0]) == [10, 0]

    def test_validation(self):
        with pytest.raises(ValueError):
            split_shares(10, [])
        with pytest.raises(ValueError):
            split_shares(10, [0.0, 0.0])
        with pytest.raises(ValueError):
            split_shares(10, [-1.0, 2.0])
        with pytest.raises(ValueError):
            split_shares(-1, [1.0])

    @given(
        n=st.integers(0, 5000),
        shares=st.lists(st.floats(0, 10, allow_nan=False), min_size=1, max_size=9),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_exact_total(self, n, shares):
        if sum(shares) == 0:
            return
        parts = split_shares(n, shares)
        assert sum(parts) == n
        assert all(p >= 0 for p in parts)


class TestContiguousSpans:
    def test_spans_cover_range(self):
        spans = contiguous_spans(10, [3, 3, 4])
        assert spans == [(0, 3), (3, 6), (6, 10)]

    def test_rejects_bad_total(self):
        with pytest.raises(ValueError, match="sum"):
            contiguous_spans(10, [3, 3])
