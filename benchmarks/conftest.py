"""Shared fixtures for the benchmark harness.

The expensive preliminaries — the 7200-experiment training grid, the
fitted predictors, and the iteration study behind Fig. 9 / Tables VI-IX
— are built once per session and shared by every bench.
"""

import pytest

from repro.experiments import default_context, run_iteration_study


@pytest.fixture(scope="session")
def ctx():
    """Simulator + trained models (the one-off setup cost)."""
    return default_context(0)


@pytest.fixture(scope="session")
def study(ctx):
    """The full iteration study (Fig. 9, Tables VI-IX), 3 seeds."""
    return run_iteration_study(ctx, n_seeds=3)


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing.

    These are experiment regenerations, not microbenchmarks: one round
    gives the regeneration cost without re-running minute-scale studies.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
