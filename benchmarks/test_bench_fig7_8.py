"""E4/E5 — Figures 7-8: prediction absolute-error histograms.

Host histogram over the 1440 held-out host predictions, device over the
2160 held-out device predictions, with the paper's bin edges.
"""

from conftest import run_once

from repro.experiments import fig7_histogram, fig8_histogram, render_histogram


def test_fig7_host_error_histogram(benchmark, ctx):
    h = run_once(benchmark, lambda: fig7_histogram(ctx))
    print()
    print(render_histogram(
        [r[0] for r in h.rows()],
        [r[1] for r in h.rows()],
        title="Fig. 7: host absolute-error histogram",
    ))
    assert h.n_predictions == 1440
    # Shape: the mass concentrates in the low-error bins.
    assert sum(h.counts[:4]) > 0.5 * h.n_predictions


def test_fig8_device_error_histogram(benchmark, ctx):
    h = run_once(benchmark, lambda: fig8_histogram(ctx))
    print()
    print(render_histogram(
        [r[0] for r in h.rows()],
        [r[1] for r in h.rows()],
        title="Fig. 8: device absolute-error histogram",
    ))
    assert h.n_predictions == 2160
    # Device errors span a wider range (execution times 0.9-42 s), but
    # most predictions still land under 0.3 s, as in the paper.
    below_03 = sum(
        c for e, c in zip(h.edges, h.counts) if e <= 0.3
    )
    assert below_03 > 0.5 * h.n_predictions
