"""Ablation — annealing schedule (DESIGN.md section 5).

The paper tunes the iteration budget via the initial temperature and
cooling function (section IV-C).  This bench sweeps the initial
temperature at a fixed budget and the budget at a fixed temperature,
showing the exploration/exploitation trade-off on the real landscape.
"""

import numpy as np
from conftest import run_once

from repro.core import run_em, run_saml
from repro.experiments import render_table

TEMPERATURES = (0.25, 1.0, 4.0)
BUDGETS = (100, 500, 2000)
SEEDS = range(4)


def test_initial_temperature_sweep(benchmark, ctx):
    ml = ctx.ml()

    def sweep():
        em = run_em(ctx.space, ctx.sim, 2770.0)
        rows = []
        for t0 in TEMPERATURES:
            times = [
                run_saml(
                    ctx.space, ml, ctx.sim, 2770.0,
                    iterations=500, seed=s, initial_temperature=t0,
                ).measured_time
                for s in SEEDS
            ]
            rows.append((f"T0={t0:g}", float(np.mean(times)), float(np.std(times))))
        return em, rows

    em, rows = run_once(benchmark, sweep)
    print()
    print(render_table(
        ["schedule", "mean time [s]", "std [s]"],
        rows,
        title=f"SA initial-temperature ablation @500 iters "
        f"(EM = {em.measured_time:.3f} s)",
        float_format="{:.4f}",
    ))
    # Every schedule still lands within 2x of the optimum; the hottest
    # start is the most variable.
    for _, mean, _ in rows:
        assert mean < 2.0 * em.measured_time


def test_budget_sweep(benchmark, ctx):
    ml = ctx.ml()

    def sweep():
        rows = []
        for budget in BUDGETS:
            times = [
                run_saml(
                    ctx.space, ml, ctx.sim, 2770.0, iterations=budget, seed=s
                ).measured_time
                for s in SEEDS
            ]
            rows.append((budget, float(np.mean(times))))
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print(render_table(
        ["iterations", "mean time [s]"],
        rows,
        title="SA budget ablation (mouse genome)",
        float_format="{:.4f}",
    ))
    # More budget never hurts much (within stochastic tolerance).
    assert rows[-1][1] <= rows[0][1] * 1.05
