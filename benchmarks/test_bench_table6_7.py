"""E9/E10 — Tables VI-VII: SAML vs EM differences across budgets.

Paper shape: the average percent difference shrinks as the iteration
budget grows (19.7% at 250 down to 6.8% at 2000); absolute differences
shrink from 0.075 s to 0.026 s.  We assert the monotone-ish decrease and
the convergence to a small gap.
"""

from conftest import run_once

from repro.experiments import CHECKPOINTS, render_table


def test_table6_percent_difference(benchmark, study):
    rows = run_once(benchmark, study.table6)
    print()
    print(render_table(
        ["DNA", *[str(c) for c in CHECKPOINTS]],
        rows,
        title="Table VI: percent difference SAML vs EM [%] "
        "(paper avg: 19.7 -> 6.8)",
    ))
    avg = rows[-1]
    assert avg[0] == "average"
    first, last = float(avg[1]), float(avg[-1])
    # Convergence: the 2000-iteration average gap is much smaller than
    # the 250-iteration one, and lands in the paper's single-digit band.
    assert last < first
    assert last < 12.0


def test_table7_absolute_difference(benchmark, study):
    rows = run_once(benchmark, study.table7)
    print()
    print(render_table(
        ["DNA", *[str(c) for c in CHECKPOINTS]],
        rows,
        title="Table VII: absolute difference SAML vs EM [s] "
        "(paper avg: 0.075 -> 0.026)",
    ))
    avg = rows[-1]
    first, last = float(avg[1]), float(avg[-1])
    assert last < first
    assert last < 0.08
