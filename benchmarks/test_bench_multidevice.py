"""Multi-device enumeration throughput: the columnar path must stay fast.

The device-count generalization keeps the vectorized analytic core as
the fast path for N >= 2: a full EM walk of dualphi's ~3M-configuration
2-device space costs a handful of columnar measurement grids plus a
share-simplex reduction, never per-configuration Python.  The gate is a
machine-portable ratio (separable over faithful walk on the same
sub-space); the full-space throughput is recorded as context.
"""

import multiprocessing
import time

from conftest import run_once

from repro.core import MeasurementEvaluator, enumerate_best, enumerate_best_separable
from repro.core.params import ParameterSpace, platform_space, share_simplex
from repro.machines import PlatformSimulator, get_platform

SIZE_MB = 1000.0
#: Acceptance floor for the multi-device separable walk; typically
#: lands well above 100x the faithful per-configuration walk.
MIN_MULTIDEVICE_SPEEDUP = 10.0
#: Shard count for the sharded-walk benches (a typical core budget).
SHARDS = 4
#: The paper's DNA input size; at this scale the coarse-grid optimum is
#: strictly improvable on both quadphi and mixedphi, which the quality
#: bench pins.
QUALITY_SIZE_MB = 3170.0


def _sub_space() -> ParameterSpace:
    """A dualphi sub-space small enough for the faithful reference walk."""
    space = platform_space(get_platform("dualphi"))
    return ParameterSpace(
        host_threads=space.host_threads[::2],
        device_threads=space.device_grids[0][0][::2],
        extra_device_grids=[
            (threads[::2], affinities)
            for threads, affinities in space.device_grids[1:]
        ],
        shares=share_simplex(3, 12.5),
    )


def test_multidevice_enum_throughput(benchmark):
    sub = _sub_space()
    full = platform_space(get_platform("dualphi"))

    def compare():
        t0 = time.perf_counter()
        faithful = enumerate_best(
            sub, MeasurementEvaluator(PlatformSimulator("dualphi", seed=0)), SIZE_MB
        )
        t_faithful = time.perf_counter() - t0
        t0 = time.perf_counter()
        separable = enumerate_best_separable(
            sub, PlatformSimulator("dualphi", seed=0), SIZE_MB
        )
        t_separable = time.perf_counter() - t0
        assert separable.best_energy.value == faithful.best_energy.value
        t0 = time.perf_counter()
        em = enumerate_best_separable(full, PlatformSimulator("dualphi", seed=0), SIZE_MB)
        t_full = time.perf_counter() - t0
        assert em.configurations == full.size()
        return t_faithful, t_separable, t_full

    t_faithful, t_separable, t_full = run_once(benchmark, compare)
    speedup = t_faithful / t_separable
    assert speedup >= MIN_MULTIDEVICE_SPEEDUP
    # Ratio gates (machine-portable); absolute throughput is context.
    benchmark.extra_info["multidevice_vectorized_speedup"] = speedup
    benchmark.extra_info["multidevice_enum_configs_per_s"] = full.size() / t_full
    print()
    print(
        f"faithful sub-space walk : {len(sub)} configs in {t_faithful:.3f}s "
        f"({len(sub) / t_faithful:,.0f}/s)"
    )
    print(
        f"separable sub-space walk: {len(sub)} configs in {t_separable:.3f}s "
        f"({speedup:.1f}x)"
    )
    print(
        f"separable full EM walk  : {full.size():,} configs in {t_full:.3f}s "
        f"({full.size() / t_full:,.0f}/s)"
    )


def test_sharded_enum_throughput(benchmark):
    """Sharding must not tax the walk: bounded overhead, identical bits.

    Both walks finish in ~10 ms, so a single-shot ratio is noise-bound;
    each path is warmed once and timed best-of-3.
    """
    full = platform_space(get_platform("dualphi"))

    def walk(**kwargs):
        return enumerate_best_separable(
            full, PlatformSimulator("dualphi", seed=0), SIZE_MB, **kwargs
        )

    def best_of_3(**kwargs):
        times = []
        for _ in range(3):
            t0 = time.perf_counter()
            result = walk(**kwargs)
            times.append(time.perf_counter() - t0)
        return min(times), result

    def compare():
        walk()  # warm both paths (imports, allocator, noise tables)
        walk(shards=SHARDS)
        t_unsharded, unsharded = best_of_3()
        t_sharded, sharded = best_of_3(shards=SHARDS)
        assert sharded.best_config == unsharded.best_config
        assert sharded.best_energy == unsharded.best_energy
        assert sharded.configurations == unsharded.configurations
        return t_unsharded, t_sharded

    t_unsharded, t_sharded = run_once(benchmark, compare)
    overhead_ratio = t_unsharded / t_sharded  # ~1.0; below 1 = overhead
    benchmark.extra_info["sharded_enum_overhead_ratio"] = overhead_ratio
    benchmark.extra_info["sharded_enum_configs_per_s"] = (
        platform_space(get_platform("dualphi")).size() / t_sharded
    )
    print()
    print(f"unsharded walk: {t_unsharded:.3f}s")
    print(
        f"{SHARDS}-shard walk : {t_sharded:.3f}s "
        f"(unsharded/sharded = {overhead_ratio:.2f}x)"
    )


def test_coarse_vs_fine_optimum_quality(benchmark):
    """Coarse-to-fine refinement must strictly beat the coarse optimum.

    The acceptance scenario of the sharded/refined enumeration work: on
    quadphi (12.5 % coarse grid) and mixedphi (5 %), refining down to
    the paper-grid 2.5 % step finds a strictly better optimum, and the
    refined result is bit-identical across shard counts and pool start
    methods.  The gains are deterministic ratios of seeded measurements,
    so they gate portably.
    """

    def refine_gains():
        gains = {}
        for name in ("quadphi", "mixedphi"):
            spec = get_platform(name)
            space = platform_space(spec)
            coarse = enumerate_best_separable(
                space, PlatformSimulator(spec, seed=0), QUALITY_SIZE_MB
            )
            refined = enumerate_best_separable(
                space, PlatformSimulator(spec, seed=0), QUALITY_SIZE_MB, refine=2.5
            )
            assert refined.best_energy.value < coarse.best_energy.value
            sharded = enumerate_best_separable(
                space,
                PlatformSimulator(spec, seed=0),
                QUALITY_SIZE_MB,
                shards=SHARDS,
                refine=2.5,
            )
            assert sharded.best_config == refined.best_config
            assert sharded.best_energy == refined.best_energy
            for start_method in multiprocessing.get_all_start_methods():
                pooled = enumerate_best_separable(
                    space,
                    PlatformSimulator(spec, seed=0),
                    QUALITY_SIZE_MB,
                    shards=SHARDS,
                    refine=2.5,
                    processes=2,
                    start_method=start_method,
                )
                assert pooled.best_config == refined.best_config
                assert pooled.best_energy == refined.best_energy
            gains[name] = (
                coarse.best_energy.value / refined.best_energy.value,
                coarse.best_energy.value,
                refined.best_energy.value,
            )
        return gains

    gains = run_once(benchmark, refine_gains)
    print()
    for name, (gain, coarse, refined) in gains.items():
        benchmark.extra_info[f"{name}_refine_gain"] = gain
        print(
            f"{name}: coarse optimum {coarse:.4f}s -> refined {refined:.4f}s "
            f"({gain:.3f}x better at the 2.5% step)"
        )
