"""Multi-device enumeration throughput: the columnar path must stay fast.

The device-count generalization keeps the vectorized analytic core as
the fast path for N >= 2: a full EM walk of dualphi's ~3M-configuration
2-device space costs a handful of columnar measurement grids plus a
share-simplex reduction, never per-configuration Python.  The gate is a
machine-portable ratio (separable over faithful walk on the same
sub-space); the full-space throughput is recorded as context.
"""

import time

from conftest import run_once

from repro.core import MeasurementEvaluator, enumerate_best, enumerate_best_separable
from repro.core.params import ParameterSpace, platform_space, share_simplex
from repro.machines import PlatformSimulator, get_platform

SIZE_MB = 1000.0
#: Acceptance floor for the multi-device separable walk; typically
#: lands well above 100x the faithful per-configuration walk.
MIN_MULTIDEVICE_SPEEDUP = 10.0


def _sub_space() -> ParameterSpace:
    """A dualphi sub-space small enough for the faithful reference walk."""
    space = platform_space(get_platform("dualphi"))
    return ParameterSpace(
        host_threads=space.host_threads[::2],
        device_threads=space.device_grids[0][0][::2],
        extra_device_grids=[
            (threads[::2], affinities)
            for threads, affinities in space.device_grids[1:]
        ],
        shares=share_simplex(3, 12.5),
    )


def test_multidevice_enum_throughput(benchmark):
    sub = _sub_space()
    full = platform_space(get_platform("dualphi"))

    def compare():
        t0 = time.perf_counter()
        faithful = enumerate_best(
            sub, MeasurementEvaluator(PlatformSimulator("dualphi", seed=0)), SIZE_MB
        )
        t_faithful = time.perf_counter() - t0
        t0 = time.perf_counter()
        separable = enumerate_best_separable(
            sub, PlatformSimulator("dualphi", seed=0), SIZE_MB
        )
        t_separable = time.perf_counter() - t0
        assert separable.best_energy.value == faithful.best_energy.value
        t0 = time.perf_counter()
        em = enumerate_best_separable(full, PlatformSimulator("dualphi", seed=0), SIZE_MB)
        t_full = time.perf_counter() - t0
        assert em.configurations == full.size()
        return t_faithful, t_separable, t_full

    t_faithful, t_separable, t_full = run_once(benchmark, compare)
    speedup = t_faithful / t_separable
    assert speedup >= MIN_MULTIDEVICE_SPEEDUP
    # Ratio gates (machine-portable); absolute throughput is context.
    benchmark.extra_info["multidevice_vectorized_speedup"] = speedup
    benchmark.extra_info["multidevice_enum_configs_per_s"] = full.size() / t_full
    print()
    print(
        f"faithful sub-space walk : {len(sub)} configs in {t_faithful:.3f}s "
        f"({len(sub) / t_faithful:,.0f}/s)"
    )
    print(
        f"separable sub-space walk: {len(sub)} configs in {t_separable:.3f}s "
        f"({speedup:.1f}x)"
    )
    print(
        f"separable full EM walk  : {full.size():,} configs in {t_full:.3f}s "
        f"({full.size() / t_full:,.0f}/s)"
    )
