"""E13/E14 — Table II's effort column and the 5%-of-experiments claim.

Times the actual cost of each method's search and counts the timed
experiments it consumes: EM walks all 19 926 configurations, SAM
measures at most its budget, SAML measures exactly one.
"""

from conftest import run_once

from repro.core import run_em, run_sam, run_saml
from repro.experiments import render_table
from repro.experiments.iterations import experiments_saved_fraction


def test_method_effort_comparison(benchmark, ctx):
    ml = ctx.ml()
    size = 3170.0

    def run_all():
        em = run_em(ctx.space, ctx.sim, size)
        sam = run_sam(ctx.space, ctx.sim, size, iterations=1000, seed=0)
        saml = run_saml(ctx.space, ml, ctx.sim, size, iterations=1000, seed=0)
        return em, sam, saml

    em, sam, saml = run_once(benchmark, run_all)
    rows = [
        ("EM", em.experiments, em.measured_time),
        ("SAM", sam.experiments, sam.measured_time),
        ("SAML", saml.experiments, saml.measured_time),
    ]
    print()
    print(render_table(
        ["method", "timed experiments", "best measured [s]"],
        rows,
        title="Method effort (Table II) — experiments consumed by the search",
    ))
    frac = experiments_saved_fraction(ctx, 1000)
    print(f"\nSAML budget = 1000 iterations = {100 * frac:.1f}% of the "
          f"{ctx.space.size()}-experiment enumeration (paper: ~5%)")

    assert em.experiments == 19926
    assert sam.experiments <= 1001
    assert saml.experiments == 1
    assert 0.04 < frac < 0.06
    # Ranking: EM optimal, the others near-optimal.
    assert em.measured_time <= sam.measured_time + 1e-9
    assert em.measured_time <= saml.measured_time + 1e-9
