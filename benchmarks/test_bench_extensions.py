"""Ablation — the implemented extensions (DESIGN.md section 6).

* Adaptive rebalancing (paper future work) vs the SAML static schedule.
* Multi-accelerator scaling (1-4 devices) with proportional shares.
"""

from conftest import run_once

from repro.core import run_saml
from repro.core.params import SystemConfiguration
from repro.experiments import render_table
from repro.machines import EMIL
from repro.runtime import AdaptiveRebalancer, MultiDeviceRuntime, run_configuration


def test_adaptive_vs_static_schedule(benchmark, ctx):
    size = 3170.0
    ml = ctx.ml()

    def compare():
        saml = run_saml(ctx.space, ml, ctx.sim, size, iterations=1000, seed=0)
        start = SystemConfiguration(48, "scatter", 240, "balanced", 50.0)
        reb = AdaptiveRebalancer(rounds=5)
        adapted = reb.run(ctx.sim, start, size)
        adaptive_time = run_configuration(ctx.sim, adapted, size).total
        return saml.measured_time, adaptive_time, adapted.host_fraction

    static_time, adaptive_time, final_fraction = run_once(benchmark, compare)
    print()
    print(render_table(
        ["schedule", "measured time [s]"],
        [
            ("SAML static (1000 iters + training)", static_time),
            (f"adaptive (5 rounds, -> {final_fraction:.1f}% host)", adaptive_time),
        ],
        title="Adaptive rebalancing vs static SAML schedule, human genome",
        float_format="{:.4f}",
    ))
    # The adaptive scheme gets within 25% of the tuned static schedule
    # with 5 measurements and no training (it cannot tune threads).
    assert adaptive_time < static_time * 1.25


def test_multidevice_scaling(benchmark):
    size = 3170.0

    def scale():
        rows = []
        for n in (1, 2, 3, 4):
            rt = MultiDeviceRuntime(EMIL.with_devices(n), seed=0)
            cfg = rt.proportional_shares(48, "scatter", 240, "balanced", size)
            rows.append((n, cfg.host_share, rt.run(cfg, size).total))
        return rows

    rows = run_once(benchmark, scale)
    print()
    print(render_table(
        ["devices", "host share %", "exec time [s]"],
        rows,
        title="Multi-accelerator scaling (proportional shares), human genome",
        float_format="{:.3f}",
    ))
    times = [r[2] for r in rows]
    assert all(a > b for a, b in zip(times, times[1:]))
    # Diminishing returns: 4 devices < 4x speedup over 1.
    assert times[0] / times[-1] < 4.0
