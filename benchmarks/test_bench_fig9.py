"""E8 — Figure 9: SAM/SAML convergence vs the EM and EML references.

One subplot per genome: best measured execution time of the SA-suggested
configuration at each iteration budget, with the EM optimum (solid line
in the paper) and the EML suggestion (dashed) as horizontal references.
"""

from conftest import run_once

from repro.dna import GENOME_ORDER
from repro.experiments import CHECKPOINTS, render_series


def test_fig9_convergence_curves(benchmark, study):
    series_by_genome = run_once(
        benchmark, lambda: {g: study.fig9_series(g) for g in GENOME_ORDER}
    )

    for genome in GENOME_ORDER:
        print()
        print(
            render_series(
                list(CHECKPOINTS),
                series_by_genome[genome],
                x_label="iterations",
                title=f"Fig. 9 ({genome}): best measured time [s]",
            )
        )

    for genome, series in series_by_genome.items():
        em = series["EM"][0]
        # EM lower-bounds everything (it is the measured optimum).
        assert all(v >= em - 1e-9 for v in series["SAML"])
        assert all(v >= em - 1e-9 for v in series["SAM"])
        # Convergence shape: the final SAML budget is within 15% of EM
        # and no worse than the first budget (allowing SA stochasticity).
        assert series["SAML"][-1] <= series["SAML"][0] * 1.05
        assert series["SAML"][-1] <= em * 1.15
