"""E2/E3 — Figures 5-6: measured vs predicted execution-time curves.

Host curves at scatter affinity (6/12/24/48 threads) and device curves
at balanced affinity (30/60/120/240 threads) over the pooled genome-
fraction size grid.  Result 1's claim: predictions match measurements.
"""

import numpy as np
from conftest import run_once

from repro.experiments import fig5_curves, fig6_curves, render_series
from repro.ml import percent_error


def _print(curves, title):
    for c in curves:
        idx = list(range(0, len(c.sizes_mb), 16))
        print()
        print(
            render_series(
                [round(c.sizes_mb[i]) for i in idx],
                {
                    "measured [s]": [c.measured[i] for i in idx],
                    "predicted [s]": [c.predicted[i] for i in idx],
                },
                x_label="size [MB]",
                title=f"{title}: {c.threads} threads ({c.affinity})",
            )
        )


def test_fig5_host_prediction_curves(benchmark, ctx):
    curves = run_once(benchmark, lambda: fig5_curves(ctx))
    _print(curves, "Fig. 5")
    for c in curves:
        pct = percent_error(np.array(c.measured), np.array(c.predicted))
        assert np.median(pct) < 10.0  # Result 1


def test_fig6_device_prediction_curves(benchmark, ctx):
    curves = run_once(benchmark, lambda: fig6_curves(ctx))
    _print(curves, "Fig. 6")
    for c in curves:
        pct = percent_error(np.array(c.measured), np.array(c.predicted))
        assert np.median(pct) < 10.0  # Result 1
