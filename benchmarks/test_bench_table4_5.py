"""E6/E7 — Tables IV-V: prediction accuracy per thread count.

Paper averages: host 0.027 s / 5.24%; device 0.074 s / 3.13%.  The
reproduction asserts the same single-digit percent-error band.
"""

from conftest import run_once

from repro.experiments import render_table, table4, table5


def _print(t, title):
    headers = ["Threads", *[str(x) for x in t.threads], "avg"]
    print()
    print(render_table(headers, t.rows(), title=title))


def test_table4_host_prediction_accuracy(benchmark, ctx):
    t = run_once(benchmark, lambda: table4(ctx))
    _print(t, "Table IV: host prediction accuracy (paper avg: 0.027 s / 5.24%)")
    assert t.threads == (2, 6, 12, 24, 36, 48)
    assert t.avg_percent < 8.0
    assert t.avg_absolute_s < 0.1


def test_table5_device_prediction_accuracy(benchmark, ctx):
    t = run_once(benchmark, lambda: table5(ctx))
    _print(t, "Table V: device prediction accuracy (paper avg: 0.074 s / 3.13%)")
    assert t.threads == (2, 4, 8, 16, 30, 60, 120, 180, 240)
    assert t.avg_percent < 8.0
    # Device absolute errors are larger (wider time span), as in the paper.
    assert t.avg_absolute_s < 0.5
