"""Evaluation-engine throughput: serial vs cached vs batched.

The tentpole claim of the engine subsystem: scoring candidate system
configurations through the ML predictor in batches (packed tree-ensemble
descent over a whole design matrix) beats per-config scalar calls by a
wide margin, and caching makes annealing-style revisits nearly free —
all while returning bit-identical values.
"""

import time

import numpy as np
from conftest import run_once

from repro.core import BatchedEngine, CachedEngine, SerialEngine, make_objective
from repro.experiments import render_table

N_CONFIGS = 2000
BATCH_SIZE = 64
MIN_BATCHED_SPEEDUP = 2.0  # acceptance floor; typically ~8-10x


def test_engine_throughput(benchmark, ctx):
    models = ctx.models
    rng = np.random.default_rng(0)
    configs = [ctx.space.random_config(rng) for _ in range(N_CONFIGS)]
    size = 2435.0

    def one_engine(engine):
        # Fresh evaluator per engine: the MLEvaluator's own side cache
        # must not leak work between timings.
        objective = make_objective(models.evaluator(), size)
        t0 = time.perf_counter()
        values = engine.evaluate_batch(objective, configs)
        return time.perf_counter() - t0, values

    def compare():
        t_serial, v_serial = one_engine(SerialEngine())
        t_batched, v_batched = one_engine(BatchedEngine(BATCH_SIZE))
        # Cached engine on a revisit-heavy stream: the same configs twice.
        objective = make_objective(models.evaluator(), size)
        cached = CachedEngine(BatchedEngine(BATCH_SIZE))
        cached.evaluate_batch(objective, configs)  # warm
        t0 = time.perf_counter()
        v_cached = cached.evaluate_batch(objective, configs)
        t_cached = time.perf_counter() - t0
        assert v_serial == v_batched == v_cached  # bit-identical
        # Every config of the warm second pass is a hit (random sampling
        # may add intra-batch duplicate hits on top).
        assert cached.cache_hits >= N_CONFIGS
        return t_serial, t_batched, t_cached

    t_serial, t_batched, t_cached = run_once(benchmark, compare)
    # Machine-portable throughput metrics for the CI regression gate
    # (benchmarks/compare.py): speedup ratios cancel the runner's speed.
    benchmark.extra_info["batched_speedup"] = t_serial / t_batched
    benchmark.extra_info["cached_speedup"] = t_serial / t_cached
    benchmark.extra_info["batched_configs_per_s"] = N_CONFIGS / t_batched
    rows = [
        ("SerialEngine", 1e3 * t_serial, N_CONFIGS / t_serial, 1.0),
        ("BatchedEngine", 1e3 * t_batched, N_CONFIGS / t_batched, t_serial / t_batched),
        ("CachedEngine (warm)", 1e3 * t_cached, N_CONFIGS / t_cached, t_serial / t_cached),
    ]
    print()
    print(render_table(
        ["engine", "time [ms]", "configs/s", "speedup"],
        [(n, round(t, 1), round(r), round(s, 1)) for n, t, r, s in rows],
        title=f"ML evaluation throughput, {N_CONFIGS} configs, batch={BATCH_SIZE}",
    ))

    assert t_serial / t_batched >= MIN_BATCHED_SPEEDUP
    assert t_cached < t_batched
