"""Evaluation-engine and analytic-core throughput benchmarks.

Two tentpole claims live here.  The engine subsystem: scoring candidate
system configurations through the ML predictor in batches (packed
tree-ensemble descent over a whole design matrix) beats per-config
scalar calls by a wide margin, and caching makes annealing-style
revisits nearly free — all while returning bit-identical values.  The
vectorized analytic core: EM space walks and training-grid generation
pushed through the columnar perf-model/simulator path beat the faithful
per-experiment scalar loops by well over an order of magnitude, again
bit-identically (same best configuration, energies, tie-breaks, and
noise draws).
"""

import time

import numpy as np
from conftest import run_once

from repro.core import (
    BatchedEngine,
    CachedEngine,
    MeasurementEvaluator,
    SerialEngine,
    enumerate_best,
    enumerate_best_separable,
    generate_training_data,
    make_objective,
)
from repro.core.params import DEFAULT_SPACE
from repro.experiments import render_table
from repro.machines import PlatformSimulator

N_CONFIGS = 2000
BATCH_SIZE = 64
MIN_BATCHED_SPEEDUP = 2.0  # acceptance floor; typically ~8-10x
#: Acceptance floor for the vectorized analytic core (ISSUE 4); the EM
#: walk typically lands ~100x and the training grid ~20-30x.
MIN_VECTORIZED_SPEEDUP = 10.0


def test_engine_throughput(benchmark, ctx):
    models = ctx.models
    rng = np.random.default_rng(0)
    configs = [ctx.space.random_config(rng) for _ in range(N_CONFIGS)]
    size = 2435.0

    def one_engine(engine):
        # Fresh evaluator per engine: the MLEvaluator's own side cache
        # must not leak work between timings.
        objective = make_objective(models.evaluator(), size)
        t0 = time.perf_counter()
        values = engine.evaluate_batch(objective, configs)
        return time.perf_counter() - t0, values

    def compare():
        t_serial, v_serial = one_engine(SerialEngine())
        t_batched, v_batched = one_engine(BatchedEngine(BATCH_SIZE))
        # Cached engine on a revisit-heavy stream: the same configs twice.
        objective = make_objective(models.evaluator(), size)
        cached = CachedEngine(BatchedEngine(BATCH_SIZE))
        cached.evaluate_batch(objective, configs)  # warm
        t0 = time.perf_counter()
        v_cached = cached.evaluate_batch(objective, configs)
        t_cached = time.perf_counter() - t0
        assert v_serial == v_batched == v_cached  # bit-identical
        # Every config of the warm second pass is a hit (random sampling
        # may add intra-batch duplicate hits on top).
        assert cached.cache_hits >= N_CONFIGS
        return t_serial, t_batched, t_cached

    t_serial, t_batched, t_cached = run_once(benchmark, compare)
    # Machine-portable throughput metrics for the CI regression gate
    # (benchmarks/compare.py): speedup ratios cancel the runner's speed.
    benchmark.extra_info["batched_speedup"] = t_serial / t_batched
    benchmark.extra_info["cached_speedup"] = t_serial / t_cached
    benchmark.extra_info["batched_configs_per_s"] = N_CONFIGS / t_batched
    rows = [
        ("SerialEngine", 1e3 * t_serial, N_CONFIGS / t_serial, 1.0),
        ("BatchedEngine", 1e3 * t_batched, N_CONFIGS / t_batched, t_serial / t_batched),
        ("CachedEngine (warm)", 1e3 * t_cached, N_CONFIGS / t_cached, t_serial / t_cached),
    ]
    print()
    print(render_table(
        ["engine", "time [ms]", "configs/s", "speedup"],
        [(n, round(t, 1), round(r), round(s, 1)) for n, t, r, s in rows],
        title=f"ML evaluation throughput, {N_CONFIGS} configs, batch={BATCH_SIZE}",
    ))

    assert t_serial / t_batched >= MIN_BATCHED_SPEEDUP
    assert t_cached < t_batched


def test_em_walk_throughput(benchmark):
    """EM space walk: scalar per-configuration walk vs vectorized separable.

    The scalar baseline is the faithful 19 926-configuration walk (two
    measurements per configuration through per-call Python); the
    vectorized path measures the separable per-side grids as columns and
    finds the optimum with one broadcast max/argmin.  Results must be
    identical: same best configuration, same energy, same tie-break.
    """
    size = 3170.0

    def compare():
        t0 = time.perf_counter()
        scalar = enumerate_best(
            DEFAULT_SPACE, MeasurementEvaluator(PlatformSimulator(seed=0)), size
        )
        t_scalar = time.perf_counter() - t0
        t0 = time.perf_counter()
        fast = enumerate_best_separable(DEFAULT_SPACE, PlatformSimulator(seed=0), size)
        t_fast = time.perf_counter() - t0
        assert fast.best_config == scalar.best_config
        assert fast.best_energy == scalar.best_energy
        return t_scalar, t_fast

    t_scalar, t_fast = run_once(benchmark, compare)
    n = DEFAULT_SPACE.size()
    benchmark.extra_info["em_vectorized_speedup"] = t_scalar / t_fast
    benchmark.extra_info["em_vectorized_configs_per_s"] = n / t_fast
    print()
    print(render_table(
        ["path", "time [ms]", "configs/s", "speedup"],
        [
            ("scalar walk", round(1e3 * t_scalar, 1), round(n / t_scalar), 1.0),
            ("vectorized separable", round(1e3 * t_fast, 2), round(n / t_fast),
             round(t_scalar / t_fast, 1)),
        ],
        title=f"EM space walk, |space| = {n}",
    ))
    assert t_scalar / t_fast >= MIN_VECTORIZED_SPEEDUP


def test_training_grid_throughput(benchmark):
    """Training-grid generation: per-item measurements vs columnar grids.

    The scalar baseline performs the paper's 7200 experiments one
    ``measure_*`` call at a time (the pre-vectorization protocol); the
    columnar path measures each side's whole grid as arrays.  The
    resulting datasets must be bit-identical, including the noise draws.
    """

    def compare():
        t0 = time.perf_counter()
        columnar = generate_training_data(PlatformSimulator(seed=0))
        t_fast = time.perf_counter() - t0
        sim = PlatformSimulator(seed=0)
        t0 = time.perf_counter()
        host_y = [
            sim.measure_host(int(t), a, float(m))
            for t, a, m in _rows(columnar.host.X, "host")
        ]
        device_y = [
            sim.measure_device(int(t), a, float(m))
            for t, a, m in _rows(columnar.device.X, "device")
        ]
        t_scalar = time.perf_counter() - t0
        assert columnar.host.y.tolist() == host_y
        assert columnar.device.y.tolist() == device_y
        return t_scalar, t_fast, columnar.n_experiments

    t_scalar, t_fast, n = run_once(benchmark, compare)
    benchmark.extra_info["training_vectorized_speedup"] = t_scalar / t_fast
    benchmark.extra_info["training_vectorized_configs_per_s"] = n / t_fast
    print()
    print(render_table(
        ["path", "time [ms]", "experiments/s", "speedup"],
        [
            ("per-item measurements", round(1e3 * t_scalar, 1), round(n / t_scalar), 1.0),
            ("columnar grids", round(1e3 * t_fast, 2), round(n / t_fast),
             round(t_scalar / t_fast, 1)),
        ],
        title=f"training-grid generation, {n} experiments",
    ))
    assert t_scalar / t_fast >= MIN_VECTORIZED_SPEEDUP


def _rows(X, side):
    """Decode (threads, affinity, mb) rows from an encoded design matrix."""
    from repro.machines.affinity import affinity_domain

    domain = affinity_domain(side)
    return [(row[0], domain[int(np.argmax(row[1:-1]))], row[-1]) for row in X]
