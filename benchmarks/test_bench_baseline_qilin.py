"""Ablation — SAML vs the Qilin-style baseline (related work, section V).

Qilin profiles each device on a few small inputs, fits linear time
models, and picks the split analytically — 6 experiments, no training,
but no thread/affinity tuning.  SAML pays the 7200-experiment training
once and then tunes the full configuration for free.  This bench
quantifies the trade-off the paper's related-work section argues.
"""

from conftest import run_once

from repro.core import run_em, run_saml
from repro.experiments import render_table
from repro.machines import PlatformSimulator
from repro.runtime import QilinPartitioner, run_configuration


def test_saml_vs_qilin(benchmark, ctx):
    size = 3170.0

    def compare():
        em = run_em(ctx.space, ctx.sim, size)
        saml = run_saml(ctx.space, ctx.ml(), ctx.sim, size, iterations=1000, seed=0)

        qilin_sim = PlatformSimulator(seed=0)
        q = QilinPartitioner()
        q.profile(qilin_sim, size)
        q_cfg = q.configuration(size)
        q_time = run_configuration(qilin_sim, q_cfg, size).total
        return em, saml, q_cfg, q_time, q.profiling_experiments

    em, saml, q_cfg, q_time, q_exp = run_once(benchmark, compare)
    rows = [
        ("EM (oracle)", em.config.describe(), 19926, em.measured_time),
        ("SAML@1000", saml.config.describe(), 1, saml.measured_time),
        ("Qilin-style", q_cfg.describe(), q_exp, q_time),
    ]
    print()
    print(render_table(
        ["method", "configuration", "experiments", "time [s]"],
        rows,
        title="SAML vs Qilin-style adaptive mapping, human genome",
    ))

    # Both beat doing nothing; SAML's larger space should match or beat
    # Qilin's fraction-only tuning (they coincide when max threads win).
    assert q_time < 2.0 * em.measured_time
    assert saml.measured_time <= q_time * 1.10
