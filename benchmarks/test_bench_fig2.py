"""E1 — Figure 2: motivational work-distribution sweeps.

Regenerates all three subplots and prints the normalized 1-10 series.
Shape checks: CPU-only wins the small input, a 60/40-70/30 split wins
the large input, and the co-processor takes ~70% when the host has only
4 threads.
"""

from conftest import run_once

from repro.experiments import render_series, run_fig2


def test_fig2_motivational_sweeps(benchmark, ctx):
    results = run_once(benchmark, lambda: run_fig2(ctx.sim))

    for name, res in results.items():
        print()
        print(
            render_series(
                list(res.labels),
                {"normalized": list(res.normalized)},
                x_label="ratio",
                title=f"{name} (size={res.scenario.size_mb:g} MB, "
                f"threads={res.scenario.cpu_threads}, best={res.best_label})",
                float_format="{:.2f}",
            )
        )

    assert results["fig2a"].best_label == "CPU only"
    assert results["fig2b"].best_label in ("70/30", "60/40", "50/50")
    assert results["fig2c"].best_label in ("40/60", "30/70", "20/80")
