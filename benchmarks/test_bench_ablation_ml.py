"""Ablation — the paper's model selection (section III-B).

BDTR vs Linear vs Poisson regression on the same 7200-experiment grid,
and the downstream effect: SAML solution quality with each evaluator.
The paper reports choosing BDTR for accuracy; this bench quantifies why.
"""

from conftest import run_once

from repro.core import run_em, run_saml
from repro.core.training import train_models
from repro.experiments import render_table
from repro.ml import (
    BoostedDecisionTreeRegressor,
    LinearRegression,
    PoissonRegressor,
)

FACTORIES = {
    "BDTR": lambda: BoostedDecisionTreeRegressor(
        n_estimators=300, learning_rate=0.08, max_depth=6, min_samples_leaf=2
    ),
    "Linear": lambda: LinearRegression(alpha=1e-6),
    "Poisson": PoissonRegressor,
}


def test_model_selection_ablation(benchmark, ctx):
    def ablate():
        rows = []
        em = run_em(ctx.space, ctx.sim, 3170.0)
        for name, factory in FACTORIES.items():
            models = train_models(ctx.models.data, model_factory=factory)
            saml = run_saml(
                ctx.space, models.evaluator(), ctx.sim, 3170.0,
                iterations=1000, seed=0,
            )
            gap = 100.0 * abs(saml.measured_time - em.measured_time) / em.measured_time
            rows.append(
                (
                    name,
                    models.host_eval.mean_percent_error,
                    models.device_eval.mean_percent_error,
                    saml.measured_time,
                    gap,
                )
            )
        return em, rows

    em, rows = run_once(benchmark, ablate)
    print()
    print(render_table(
        ["model", "host err%", "dev err%", "SAML time [s]", "gap vs EM %"],
        rows,
        title=f"Evaluator ablation, human genome (EM = {em.measured_time:.3f} s)",
    ))

    by_name = {r[0]: r for r in rows}
    # BDTR dominates both baselines on prediction error (paper's choice).
    assert by_name["BDTR"][1] < by_name["Linear"][1]
    assert by_name["BDTR"][1] < by_name["Poisson"][1]
    assert by_name["BDTR"][2] < by_name["Linear"][2]
    # ...and yields the best (or tied) downstream configuration.
    assert by_name["BDTR"][4] <= min(r[4] for r in rows) + 5.0
