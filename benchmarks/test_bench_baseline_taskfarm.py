"""Ablation — static tuning vs dynamic task-farm scheduling (section V).

Ravi & Agrawal's dynamic framework needs no training and no search; it
pays per-task dispatch and chunked-transfer overheads instead.  This
bench sweeps the task granularity (the scheme's one knob) and compares
its best makespan against the EM optimum and SAML's suggestion.
"""

from conftest import run_once

from repro.core import run_em, run_saml
from repro.experiments import render_table
from repro.machines import PlatformSimulator
from repro.runtime import TaskFarmScheduler

TASK_COUNTS = (2, 4, 8, 16, 32, 64, 128, 256, 512)


def test_taskfarm_vs_static_tuning(benchmark, ctx):
    size = 3170.0

    def compare():
        em = run_em(ctx.space, ctx.sim, size)
        saml = run_saml(ctx.space, ctx.ml(), ctx.sim, size, iterations=1000, seed=0)
        farm = TaskFarmScheduler(PlatformSimulator(seed=0), seed=0)
        sweep = farm.sweep_granularity(size, TASK_COUNTS)
        return em, saml, sweep

    em, saml, sweep = run_once(benchmark, compare)

    print()
    print(render_table(
        ["tasks", "makespan [s]", "host share %", "utilization"],
        [
            (n, r.makespan_s, r.host_share_percent, r.utilization)
            for n, r in sweep.items()
        ],
        title="Task-farm granularity sweep, human genome",
    ))
    best = min(sweep.values(), key=lambda r: r.makespan_s)
    print(f"\nEM = {em.measured_time:.3f} s, SAML@1000 = "
          f"{saml.measured_time:.3f} s, task farm best = {best.makespan_s:.3f} s")

    # The U-curve: extremes lose to the middle.
    makespans = [sweep[n].makespan_s for n in TASK_COUNTS]
    assert min(makespans) < makespans[0]
    assert min(makespans) < makespans[-1]
    # Dynamic scheduling self-balances close to the tuned static split
    # without any training (within 25% on this workload).
    assert best.makespan_s < em.measured_time * 1.25
    # The discovered share approximates the static optimum's fraction.
    assert 45.0 <= best.host_share_percent <= 75.0
