"""E11/E12 — Tables VIII-IX: heterogeneous speedups over the baselines.

Paper: SAML at 1000 iterations reaches up to 1.74x over host-only and up
to 2.18x over device-only; EM's bounds are 1.95x and 2.36x.  The
reproduction asserts the same bands ("who wins, by roughly what factor").
"""

from conftest import run_once

from repro.experiments import CHECKPOINTS, render_table

HDR = ["DNA", *[str(c) for c in CHECKPOINTS], "EM"]


def test_table8_speedup_vs_host_only(benchmark, study):
    rows = run_once(benchmark, study.table8)
    print()
    print(render_table(
        HDR, rows,
        title="Table VIII: speedup vs host-only, 48 threads "
        "(paper: SAML@1000 up to 1.74x, EM up to 1.95x)",
    ))
    for row in rows:
        em_speedup = float(row[-1])
        at_2000 = float(row[-2])
        assert 1.3 < em_speedup < 2.2
        assert at_2000 > 1.2
        # SAML cannot beat the measured optimum.
        assert at_2000 <= em_speedup * 1.01


def test_table9_speedup_vs_device_only(benchmark, study):
    rows = run_once(benchmark, study.table9)
    print()
    print(render_table(
        HDR, rows,
        title="Table IX: speedup vs device-only, 240 threads "
        "(paper: SAML@1000 up to 2.18x, EM up to 2.36x)",
    ))
    for row in rows:
        em_speedup = float(row[-1])
        at_2000 = float(row[-2])
        assert 1.8 < em_speedup < 2.7
        assert at_2000 > 1.5
        assert at_2000 <= em_speedup * 1.01
