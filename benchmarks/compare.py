#!/usr/bin/env python
"""Compare a pytest-benchmark JSON run against a committed baseline.

Usage::

    python benchmarks/compare.py BENCH_engine.json \
        [--baseline benchmarks/baseline.json] [--max-regression 0.30]
    python benchmarks/compare.py BENCH_engine.json --update

The baseline maps benchmark names to throughput metrics recorded in each
benchmark's ``extra_info`` (see ``test_bench_engine.py``).  The tracked
metrics are *ratios* (e.g. batched-over-serial speedup), so a slower CI
runner cancels out and the gate only trips on genuine throughput
regressions.  A run fails when any tracked metric drops more than
``--max-regression`` (default 30 %) below its baseline; higher is never
a failure.  ``--update`` rewrites the baseline from the given run
instead of comparing.

Absolute metrics in the baseline (anything ending in ``_per_s``) are
reported but never gate: they depend on the machine that recorded them.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).parent / "baseline.json"
DEFAULT_MAX_REGRESSION = 0.30


def load_run_metrics(path: Path) -> dict[str, dict[str, float]]:
    """Extract ``{benchmark name: extra_info metrics}`` from a run JSON."""
    data = json.loads(path.read_text())
    metrics: dict[str, dict[str, float]] = {}
    for bench in data.get("benchmarks", []):
        extra = {
            k: float(v)
            for k, v in bench.get("extra_info", {}).items()
            if isinstance(v, (int, float))
        }
        if extra:
            metrics[bench["name"]] = extra
    return metrics


def is_informational(metric: str) -> bool:
    """Absolute (machine-dependent) metrics report but never gate."""
    return metric.endswith("_per_s")


def compare(
    run: dict[str, dict[str, float]],
    baseline: dict[str, dict[str, float]],
    max_regression: float,
) -> list[str]:
    """Return a list of failure messages (empty = pass), printing a report."""
    failures: list[str] = []
    for name, base_metrics in sorted(baseline.items()):
        run_metrics = run.get(name)
        if run_metrics is None:
            failures.append(f"{name}: benchmark missing from this run")
            continue
        for metric, base_value in sorted(base_metrics.items()):
            value = run_metrics.get(metric)
            if value is None:
                failures.append(f"{name}.{metric}: metric missing from this run")
                continue
            change = (value - base_value) / base_value
            floor = base_value * (1.0 - max_regression)
            gate = "info" if is_informational(metric) else "gate"
            status = "ok" if (value >= floor or gate == "info") else "FAIL"
            print(
                f"  [{status:>4}] {name}.{metric}: {value:.3f} "
                f"(baseline {base_value:.3f}, {change:+.1%}, {gate})"
            )
            if status == "FAIL":
                failures.append(
                    f"{name}.{metric}: {value:.3f} is more than "
                    f"{max_regression:.0%} below baseline {base_value:.3f}"
                )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("run_json", type=Path, help="pytest-benchmark JSON output")
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINE,
        help=f"committed baseline (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--max-regression", type=float, default=DEFAULT_MAX_REGRESSION,
        help="maximum tolerated fractional drop per gated metric (default: 0.30)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the baseline from this run instead of comparing",
    )
    args = parser.parse_args(argv)

    run = load_run_metrics(args.run_json)
    if not run:
        print(f"error: no extra_info metrics found in {args.run_json}", file=sys.stderr)
        return 2

    if args.update:
        args.baseline.write_text(json.dumps(run, indent=2, sort_keys=True) + "\n")
        print(f"baseline updated: {args.baseline}")
        return 0

    if not args.baseline.exists():
        print(f"error: baseline {args.baseline} not found", file=sys.stderr)
        return 2
    baseline = json.loads(args.baseline.read_text())
    print(f"comparing {args.run_json} against {args.baseline} "
          f"(max regression {args.max_regression:.0%}):")
    failures = compare(run, baseline, args.max_regression)
    if failures:
        print()
        for failure in failures:
            print(f"regression: {failure}", file=sys.stderr)
        return 1
    print("benchmark throughput within tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
