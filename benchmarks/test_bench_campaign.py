"""Cross-platform campaign cost: tuning the whole fleet vs one platform.

The campaign subsystem's pitch is that answering the paper's tuning
question for a *fleet* of platforms costs a small multiple of answering
it for Emil alone — each platform's enumeration reference uses the
separable fast path and the method itself runs on the batched engine.
"""

from conftest import run_once

from repro.core import tune_campaign
from repro.experiments import render_table
from repro.machines import platform_names

SIZE_MB = 1000.0
ITERATIONS = 300


def test_campaign_fleet(benchmark):
    def fleet():
        return tune_campaign(method="SAM", size_mb=SIZE_MB, iterations=ITERATIONS)

    result = run_once(benchmark, fleet)
    assert len(result) == len(platform_names())
    # Every platform's search stays a small fraction of its enumeration
    # budget (the deviceless host-only space is tiny, so exempt).
    for report in result:
        if report.space_size > 1000:
            assert report.budget_fraction < 0.05
    print()
    print(render_table(
        result.table_headers(),
        result.table_rows(),
        title=f"SAM campaign, {SIZE_MB:g} MB, {ITERATIONS} iterations",
    ))
