"""Ablation — simulated annealing vs the Press et al. alternatives.

Section III-A justifies choosing SA over genetic algorithms, tabu
search and local search.  This bench runs all of them (plus random
search as the floor) at the same 500-evaluation budget on the real
ML-predicted landscape and compares solution quality.
"""

import numpy as np
from conftest import run_once

from repro.core import SimulatedAnnealing, run_em
from repro.core.evaluators import MeasurementEvaluator, make_objective
from repro.experiments import render_table
from repro.search import (
    AntColony,
    GeneticAlgorithm,
    HillClimbing,
    RandomSearch,
    TabuSearch,
)

BUDGET = 500
SEEDS = range(4)


def test_metaheuristic_comparison(benchmark, ctx):
    ml = ctx.ml()
    size = 3170.0

    def compare():
        em = run_em(ctx.space, ctx.sim, size)
        measure = MeasurementEvaluator(ctx.sim)
        rows = []

        def measured_quality(config) -> float:
            return measure.evaluate(config, size).value

        # Simulated annealing (the paper's choice).
        sa_times = []
        for s in SEEDS:
            run = SimulatedAnnealing(ctx.space, seed=s).run(
                lambda c: ml.evaluate(c, size), iterations=BUDGET
            )
            sa_times.append(measured_quality(run.best_config))
        rows.append(("SimulatedAnnealing", float(np.mean(sa_times))))

        objective = make_objective(ml, size)
        for cls in (TabuSearch, GeneticAlgorithm, HillClimbing, AntColony, RandomSearch):
            times = []
            for s in SEEDS:
                res = cls(ctx.space, seed=s).run(objective, budget=BUDGET)
                times.append(measured_quality(res.best_config))
            rows.append((cls.__name__, float(np.mean(times))))
        return em, rows

    em, rows = run_once(benchmark, compare)
    print()
    print(render_table(
        ["method", "mean measured time [s]"],
        sorted(rows, key=lambda r: r[1]),
        title=f"Metaheuristic ablation @ {BUDGET} evaluations, human genome "
        f"(EM = {em.measured_time:.3f} s)",
        float_format="{:.4f}",
    ))

    by_name = dict(rows)
    sa = by_name["SimulatedAnnealing"]
    # SA is competitive: within 10% of the best method and no worse than
    # random search.
    best = min(by_name.values())
    assert sa <= best * 1.10
    assert sa <= by_name["RandomSearch"] * 1.02
