"""Portfolio + transfer budget economics: same optima, fewer experiments.

The headline claim of the transfer/portfolio tier (docs/portfolio.md)
is a budget statement, so it is pinned as a bench, not a unit test:
tune the full built-in workload x platform matrix twice —

- **baseline arm**: per-cell ``SAML`` from scratch, every cell paying
  its full training grid (the paper's Table II workflow at matrix
  scale);
- **portfolio arm**: successive-halving race over the searcher
  catalogue plus warm-started transfer training.

and require that the portfolio arm reaches an optimum distance no
worse than the baseline in **every** cell while spending at least
``MIN_BUDGET_SAVINGS`` fewer *total* experiments (training + search)
across the matrix.  Experiments are simulated-measurement counts —
deterministic, machine-portable — so unlike the throughput benches the
hard floor here is exact, not a timing ratio.  The measured savings
ratio is additionally gated against ``baseline.json`` so a quiet
regression (say, a schedule change that erodes the margin without
crossing the floor) still fails the bench job.
"""

from conftest import run_once

from repro.core.campaign import tune_matrix
from repro.core.options import TuningOptions
from repro.core.portfolio import PortfolioSpec

WORKLOADS = (
    "dna-paper",
    "short-read",
    "long-genome",
    "dense-motif",
    "tiny-alphabet",
    "protein-alphabet",
)
#: The six accelerator platforms (SAML needs a device side to predict).
PLATFORMS = ("emil", "fathost", "dualphi", "slowlink", "quadphi", "mixedphi")
ITERS = 200
#: The raced schedule: 25/50/100/200 over the full catalogue.
SCHEDULE = PortfolioSpec(rung0=25, eta=2)
#: Acceptance floor on total-experiment savings across the matrix;
#: typically lands near 0.44 (the warm cells halve their grids and the
#: race's search spend stays far below one training grid).
MIN_BUDGET_SAVINGS = 0.30


def test_portfolio_budget_savings(benchmark):
    def compare():
        baseline = tune_matrix(
            WORKLOADS, PLATFORMS, method="SAML", iterations=ITERS, seed=0
        )
        portfolio = tune_matrix(
            WORKLOADS,
            PLATFORMS,
            method="SAM",
            iterations=ITERS,
            seed=0,
            options=TuningOptions(transfer=True, portfolio=SCHEDULE),
        )
        return baseline, portfolio

    baseline, portfolio = run_once(benchmark, compare)

    assert len(baseline) == len(portfolio) == len(WORKLOADS) * len(PLATFORMS)
    for base, port in zip(baseline, portfolio):
        cell = f"{base.workload}@{base.platform}"
        assert port.workload == base.workload and port.platform == base.platform
        assert port.portfolio is not None, cell
        # Same-or-better optimum distance in every cell, no exceptions.
        assert port.optimum_distance <= base.optimum_distance + 1e-12, (
            f"{cell}: portfolio d={port.optimum_distance:.4f} worse than "
            f"baseline d={base.optimum_distance:.4f}"
        )

    spent_base = sum(r.total_experiments for r in baseline)
    spent_port = sum(r.total_experiments for r in portfolio)
    savings = 1.0 - spent_port / spent_base
    assert savings >= MIN_BUDGET_SAVINGS, (
        f"portfolio arm spent {spent_port} vs baseline {spent_base}: "
        f"savings {savings:.3f} below the {MIN_BUDGET_SAVINGS:.2f} floor"
    )

    quality = sum(r.optimum_distance for r in baseline) / sum(
        r.optimum_distance for r in portfolio
    )
    # Deterministic ratio gates: budget savings and aggregate quality.
    benchmark.extra_info["portfolio_budget_savings"] = savings
    benchmark.extra_info["portfolio_quality_gain"] = quality
    print()
    print(
        f"baseline arm : {spent_base} experiments "
        f"(mean distance {sum(r.optimum_distance for r in baseline) / len(baseline):.3f})"
    )
    print(
        f"portfolio arm: {spent_port} experiments "
        f"(mean distance {sum(r.optimum_distance for r in portfolio) / len(portfolio):.3f})"
    )
    print(f"budget savings {savings:.3f}, aggregate quality gain {quality:.3f}x")
