"""Ablation — DNA matching engines (the executable workload substrate).

Throughput of the scalar reference scan, the exact vectorized windowed
scan (the SIMD-kernel analog) and chunk-parallel PaREM on the same
buffer, with identical-results verification.  This is a genuine
microbenchmark, so pytest-benchmark's statistics are meaningful here.
"""

import numpy as np
import pytest

from repro.dna import (
    DEFAULT_MOTIFS,
    ParemEngine,
    WindowedScanner,
    build_automaton,
    generate_sequence,
    scan_sequential,
)

DFA = build_automaton(DEFAULT_MOTIFS)
SMALL = generate_sequence(50_000, seed=1)
LARGE = generate_sequence(2_000_000, seed=2)


@pytest.fixture(scope="module")
def expected_small():
    return scan_sequential(DFA, SMALL)


@pytest.fixture(scope="module")
def expected_large():
    return WindowedScanner(DFA).scan(LARGE)


def test_scalar_scan_throughput(benchmark, expected_small):
    result = benchmark(lambda: scan_sequential(DFA, SMALL))
    assert result.total == expected_small.total


def test_windowed_scan_throughput(benchmark, expected_large):
    scanner = WindowedScanner(DFA)
    result = benchmark(lambda: scanner.scan(LARGE))
    assert result.total == expected_large.total
    assert np.array_equal(result.per_pattern, expected_large.per_pattern)


def test_parem_scan_throughput(benchmark, expected_large):
    engine = ParemEngine(DFA)
    result = benchmark(lambda: engine.scan(LARGE, n_chunks=8))
    assert result.total == expected_large.total


def test_minimized_regex_dfa_scan(benchmark):
    """Hopcroft-minimized regex DFA: same counts, fewer states."""
    from repro.dna import compile_regex
    from repro.dna.minimize import minimize_dfa

    cre = compile_regex("TATAWAW|CANNTG|(CA)+CACACA")
    small = minimize_dfa(cre.dfa)
    assert small.n_states <= cre.dfa.n_states
    result = benchmark(lambda: scan_sequential(small, SMALL))
    assert result.total == scan_sequential(cre.dfa, SMALL).total


def test_windowed_beats_scalar_by_an_order_of_magnitude(expected_small):
    import time

    t0 = time.perf_counter()
    scan_sequential(DFA, SMALL)
    scalar = time.perf_counter() - t0

    scanner = WindowedScanner(DFA)
    scanner.scan(SMALL)  # warm the table
    t0 = time.perf_counter()
    scanner.scan(SMALL)
    vectorized = time.perf_counter() - t0

    assert vectorized < scalar / 5.0
