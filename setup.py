"""Legacy setuptools shim.

Metadata lives in ``pyproject.toml``; this file exists so environments
without the ``wheel`` package (where PEP 660 editable builds fail) can
still do ``pip install -e . --no-use-pep517``.
"""

from setuptools import setup

setup()
